// MetricsRegistry: counters, gauges, and fixed-bucket histograms keyed by
// interned names.
//
// The registry is the sink the built-in probes (probes.hpp) write into and
// the JSONL exporter reads out of. Design constraints, in order:
//   * hot-path writes are field updates on a handle obtained once at setup
//     (no name lookup per sample);
//   * handles are stable — registering more metrics never invalidates an
//     existing Counter/Gauge/Histogram reference;
//   * a name maps to exactly one metric of one kind (re-requesting returns
//     the same object, so several runs can aggregate into one registry;
//     requesting an existing name as a different kind is a CheckError).
//
// Histograms use fixed bucket bounds chosen at registration (linear or
// exponential helpers provided): per-sample cost is a branchless-ish
// upper_bound over a small vector, memory is O(buckets) regardless of
// sample count, and percentile estimates are bucket-interpolated.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace psc {

using MetricId = std::uint32_t;

// Shared percentile bucket walk: locates the bucket holding the p-th
// percentile sample of `total` samples spread over `buckets[0..n)`, and how
// many samples precede that bucket (for interpolation). Every histogram in
// the tree (obs::Histogram's fixed bounds, the flight recorder's HDR-style
// LogHistogram) does this same walk; what differs is only how a bucket
// index maps back to a value, which stays with the caller. `valid` is false
// when total == 0 (no samples) or the walk fell off the end (floating-point
// edge when p rounds past the last sample) — callers then fall back to
// their observed max.
struct PercentileCut {
  std::size_t bucket = 0;
  std::uint64_t below = 0;
  bool valid = false;
};

inline PercentileCut percentile_cut(const std::uint64_t* buckets,
                                    std::size_t n, std::uint64_t total,
                                    double p) {
  PercentileCut cut;
  if (total == 0) return cut;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(total);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < n; ++b) {
    if (buckets[b] == 0) continue;
    cut.below = seen;
    seen += buckets[b];
    if (static_cast<double>(seen) >= target) {
      cut.bucket = b;
      cut.valid = true;
      return cut;
    }
  }
  return cut;  // valid == false: caller clamps to its max
}

class Counter {
 public:
  void add(std::uint64_t n = 1) { v_ += n; }
  std::uint64_t value() const { return v_; }

 private:
  std::uint64_t v_ = 0;
};

// Last/min/max/mean over set() calls — a sampled instantaneous quantity.
class Gauge {
 public:
  void set(double v);
  std::size_t samples() const { return n_; }
  double last() const { return last_; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double last_ = 0, min_ = 0, max_ = 0, sum_ = 0;
};

class Histogram {
 public:
  // `bounds` are strictly increasing bucket upper bounds; an implicit
  // overflow bucket (+inf) is appended, so buckets().size() ==
  // bounds.size() + 1. Sample x lands in the first bucket with x <= bound.
  explicit Histogram(std::vector<double> bounds);

  // n+1 bounds evenly spaced over [lo, hi].
  static std::vector<double> linear_bounds(double lo, double hi,
                                           std::size_t n);
  // lo, lo*factor, lo*factor^2, ... (n bounds, factor > 1).
  static std::vector<double> exponential_bounds(double lo, double factor,
                                                std::size_t n);

  // Inline: runs once per observed sample on probe hot paths (the
  // bench_executor overhead gates hold attached probes under 5% of
  // scheduler ns/event). Zero-centered doubling ladders (slack_bounds())
  // are indexed arithmetically from the sample's binary exponent; anything
  // else falls back to binary search, whose serially dependent loads cost
  // ~4x more per sample.
  void add(double x) {
    const std::size_t i =
        pow2_mid_ != 0 ? pow2_index(x) : search_index(x);
    ++buckets_[i];
    ++n_;
    sum_ += x;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  std::uint64_t count() const { return n_; }
  double sum() const { return sum_; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  const std::vector<double>& bounds() const { return bounds_; }
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }
  // p in [0, 100]; linear interpolation inside the selected bucket,
  // clamped to the observed [min, max]. An estimate, exact at bucket edges.
  // NaN when the histogram holds no samples.
  double percentile(double p) const;
  // The quantiles every consumer actually reads (psc-report, observatory,
  // the JSONL exporter) — use these instead of re-walking buckets()/sum().
  double p50() const { return percentile(50); }
  double p90() const { return percentile(90); }
  double p99() const { return percentile(99); }

 private:
  // Index of the first bound >= x (== bounds_.size() past the last bound,
  // i.e. the overflow bucket). The generic path; ~19ns/sample on a
  // 49-bound ladder because each probe's load depends on the previous
  // comparison.
  std::size_t search_index(double x) const {
    const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), x,
                                     [](double v, double b) { return v <= b; });
    return static_cast<std::size_t>(it - bounds_.begin());
  }

  // Same result for a zero-centered doubling ladder
  // (-lo*2^(m-1) .. -lo, 0, lo .. lo*2^(m-1)), detected at construction:
  // bounds_[pow2_mid_] == 0 and positive bounds double from lo. The raw
  // exponent of |x|/lo lands within one step of the exact rung (1/lo and
  // the product both round), so two predictable nudges against the stored
  // bounds make it exact.
  std::size_t pow2_index(double x) const {
    const double y = x < 0 ? -x : x;
    const double lo = bounds_[pow2_mid_ + 1];
    if (y <= lo) {
      // |x| inside the innermost rung: 0 maps to the zero bound, (0, lo]
      // to the first positive bound, [-lo, 0) to -lo only when exact.
      if (x == 0.0) return pow2_mid_;
      if (x > 0.0) return pow2_mid_ + 1;
      return pow2_mid_ - (y == lo ? 1 : 0);
    }
    if (y != y) return bounds_.size();  // NaN: overflow, as search_index
    const int top = static_cast<int>(pow2_mid_) - 1;
    int e = static_cast<int>((std::bit_cast<std::uint64_t>(y * pow2_inv_lo_)
                              >> 52) & 0x7ff) - 1023;
    if (e < 0) e = 0;
    if (e > top) e = top;
    const double* pos = bounds_.data() + pow2_mid_ + 1;
    if (e > 0 && pos[e] > y) --e;
    if (e < top && pos[e + 1] <= y) ++e;
    // e is now the exact floor of log2(y/lo), clamped to [0, top].
    if (x > 0) {
      // First rung >= y is e, or e+1 when y overshoots it; e+1 past the
      // top rung is bounds_.size(), the overflow bucket.
      return pow2_mid_ + 1 + static_cast<std::size_t>(e) +
             (pos[e] < y ? 1u : 0u);
    }
    // Negative side mirrors: x <= -lo*2^k first holds at the largest
    // k <= floor(log2(y/lo)), stored at index pow2_mid_ - 1 - e.
    return pow2_mid_ - 1 - static_cast<std::size_t>(e);
  }

  std::vector<double> bounds_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t n_ = 0;
  double sum_ = 0;
  double min_ = std::numeric_limits<double>::max();
  double max_ = std::numeric_limits<double>::lowest();
  // pow2_index parameters; pow2_mid_ == 0 means "no fast path" (a ladder
  // always has at least one negative bound, so its mid is >= 1).
  std::size_t pow2_mid_ = 0;
  double pow2_inv_lo_ = 0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Get-or-create. References stay valid for the registry's lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  // `bounds` are used only on first registration of `name`.
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  // Interning: every registered name has a dense id (registration order).
  MetricId intern(std::string_view name);
  const std::string& name(MetricId id) const;
  std::size_t size() const { return slots_.size(); }

  // Read-only lookups (nullptr when absent or of another kind).
  const Counter* find_counter(std::string_view name) const;
  const Gauge* find_gauge(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;

  // One self-contained JSON object per line, e.g.
  //   {"type":"counter","name":"channel.sent","value":42}
  // Histograms carry bounds/buckets plus summary stats, so a dump is
  // enough to rebuild the distribution.
  void write_jsonl(std::ostream& os) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Slot {
    std::string name;
    Kind kind;
    std::unique_ptr<Counter> c;
    std::unique_ptr<Gauge> g;
    std::unique_ptr<Histogram> h;
  };

  const Slot* find(std::string_view name, Kind kind) const;

  std::vector<std::unique_ptr<Slot>> slots_;  // index = MetricId
  std::unordered_map<std::string, MetricId> index_;
};

// JSON string escaping shared by the exporters.
std::string json_escape(std::string_view s);

}  // namespace psc
