// MetricsRegistry: counters, gauges, and fixed-bucket histograms keyed by
// interned names.
//
// The registry is the sink the built-in probes (probes.hpp) write into and
// the JSONL exporter reads out of. Design constraints, in order:
//   * hot-path writes are field updates on a handle obtained once at setup
//     (no name lookup per sample);
//   * handles are stable — registering more metrics never invalidates an
//     existing Counter/Gauge/Histogram reference;
//   * a name maps to exactly one metric of one kind (re-requesting returns
//     the same object, so several runs can aggregate into one registry;
//     requesting an existing name as a different kind is a CheckError).
//
// Histograms use fixed bucket bounds chosen at registration (linear or
// exponential helpers provided): per-sample cost is a branchless-ish
// upper_bound over a small vector, memory is O(buckets) regardless of
// sample count, and percentile estimates are bucket-interpolated.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace psc {

using MetricId = std::uint32_t;

class Counter {
 public:
  void add(std::uint64_t n = 1) { v_ += n; }
  std::uint64_t value() const { return v_; }

 private:
  std::uint64_t v_ = 0;
};

// Last/min/max/mean over set() calls — a sampled instantaneous quantity.
class Gauge {
 public:
  void set(double v);
  std::size_t samples() const { return n_; }
  double last() const { return last_; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double last_ = 0, min_ = 0, max_ = 0, sum_ = 0;
};

class Histogram {
 public:
  // `bounds` are strictly increasing bucket upper bounds; an implicit
  // overflow bucket (+inf) is appended, so buckets().size() ==
  // bounds.size() + 1. Sample x lands in the first bucket with x <= bound.
  explicit Histogram(std::vector<double> bounds);

  // n+1 bounds evenly spaced over [lo, hi].
  static std::vector<double> linear_bounds(double lo, double hi,
                                           std::size_t n);
  // lo, lo*factor, lo*factor^2, ... (n bounds, factor > 1).
  static std::vector<double> exponential_bounds(double lo, double factor,
                                                std::size_t n);

  void add(double x);
  std::uint64_t count() const { return n_; }
  double sum() const { return sum_; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  const std::vector<double>& bounds() const { return bounds_; }
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }
  // p in [0, 100]; linear interpolation inside the selected bucket,
  // clamped to the observed [min, max]. An estimate, exact at bucket edges.
  double percentile(double p) const;

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t n_ = 0;
  double sum_ = 0;
  double min_ = std::numeric_limits<double>::max();
  double max_ = std::numeric_limits<double>::lowest();
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Get-or-create. References stay valid for the registry's lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  // `bounds` are used only on first registration of `name`.
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  // Interning: every registered name has a dense id (registration order).
  MetricId intern(std::string_view name);
  const std::string& name(MetricId id) const;
  std::size_t size() const { return slots_.size(); }

  // Read-only lookups (nullptr when absent or of another kind).
  const Counter* find_counter(std::string_view name) const;
  const Gauge* find_gauge(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;

  // One self-contained JSON object per line, e.g.
  //   {"type":"counter","name":"channel.sent","value":42}
  // Histograms carry bounds/buckets plus summary stats, so a dump is
  // enough to rebuild the distribution.
  void write_jsonl(std::ostream& os) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Slot {
    std::string name;
    Kind kind;
    std::unique_ptr<Counter> c;
    std::unique_ptr<Gauge> g;
    std::unique_ptr<Histogram> h;
  };

  const Slot* find(std::string_view name, Kind kind) const;

  std::vector<std::unique_ptr<Slot>> slots_;  // index = MetricId
  std::unordered_map<std::string, MetricId> index_;
};

// JSON string escaping shared by the exporters.
std::string json_escape(std::string_view s);

}  // namespace psc
