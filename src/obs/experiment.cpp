#include "obs/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <optional>
#include <ostream>
#include <sstream>

#include "clock/discipline.hpp"
#include "obs/flight.hpp"
#include "obs/instrument.hpp"
#include "rw/harness.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace psc {

namespace {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

std::vector<std::string> split_list(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    item = trim(item);
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::vector<Duration> parse_us_list(const std::string& s) {
  std::vector<Duration> out;
  for (const auto& v : split_list(s)) out.push_back(microseconds(std::stoll(v)));
  return out;
}

std::unique_ptr<DriftModel> make_drift(const std::string& name) {
  if (name == "perfect") return std::make_unique<PerfectDrift>();
  if (name == "offset+") return std::make_unique<OffsetDrift>(+1.0);
  if (name == "offset-") return std::make_unique<OffsetDrift>(-1.0);
  if (name == "zigzag") return std::make_unique<ZigzagDrift>(0.3);
  if (name == "random") {
    return std::make_unique<RandomDrift>(0.1, milliseconds(1));
  }
  if (name == "opposing") return std::make_unique<OpposingOffsetDrift>();
  if (name == "disciplined") {
    return std::make_unique<DisciplinedDrift>(DisciplineConfig{});
  }
  PSC_CHECK(false, "unknown drift model '" << name << "'");
  return nullptr;
}

double us(double ns) { return ns / 1000.0; }
double us(Duration ns) { return static_cast<double>(ns) / 1000.0; }

void put_cell_number(std::ostream& os, double v) {
  if (std::isfinite(v)) {
    os << v;
  } else {
    os << "null";
  }
}

}  // namespace

SweepConfig parse_sweep_config(std::istream& is) {
  SweepConfig cfg;
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    PSC_CHECK(eq != std::string::npos,
              "sweep config line " << lineno << ": expected key = value");
    const std::string key = trim(line.substr(0, eq));
    const std::string val = trim(line.substr(eq + 1));
    if (key == "nodes") {
      cfg.num_nodes = std::stoi(val);
    } else if (key == "ops_per_node") {
      cfg.ops_per_node = std::stoi(val);
    } else if (key == "write_fraction") {
      cfg.write_fraction = std::stod(val);
    } else if (key == "think_max_us") {
      cfg.think_max = microseconds(std::stoll(val));
    } else if (key == "horizon_ms") {
      cfg.horizon = milliseconds(std::stoll(val));
    } else if (key == "drift") {
      cfg.drift = val;
    } else if (key == "algos") {
      cfg.algos = split_list(val);
    } else if (key == "eps_us") {
      cfg.eps = parse_us_list(val);
    } else if (key == "delta_us") {
      cfg.delta = parse_us_list(val);
    } else if (key == "d1_us") {
      cfg.d1 = parse_us_list(val);
    } else if (key == "d2_us") {
      cfg.d2 = parse_us_list(val);
    } else if (key == "c_us") {
      cfg.c = parse_us_list(val);
    } else if (key == "ell_us") {
      cfg.ell = parse_us_list(val);
    } else if (key == "seeds") {
      cfg.seeds.clear();
      for (const auto& v : split_list(val)) cfg.seeds.push_back(std::stoull(v));
    } else if (key == "profile") {
      cfg.profile = std::stoi(val) != 0;
    } else {
      PSC_CHECK(false, "sweep config line " << lineno << ": unknown key '"
                                            << key << "'");
    }
  }
  PSC_CHECK(!cfg.algos.empty() && !cfg.eps.empty() && !cfg.delta.empty() &&
                !cfg.d1.empty() && !cfg.d2.empty() && !cfg.c.empty() &&
                !cfg.seeds.empty(),
            "sweep config: every grid axis needs at least one value");
  for (const std::string& a : cfg.algos) {
    PSC_CHECK(a == "L" || a == "S" || a == "baseline" || a == "mmt",
              "unknown algorithm '" << a << "' (L, S, baseline, mmt)");
    PSC_CHECK(a != "mmt" || !cfg.ell.empty(),
              "algorithm mmt requires a non-empty ell_us axis");
  }
  make_drift(cfg.drift);  // validate eagerly
  return cfg;
}

SweepConfig load_sweep_config(const std::string& path) {
  std::ifstream is(path);
  PSC_CHECK(is.good(), "cannot open sweep config " << path);
  return parse_sweep_config(is);
}

Duration SweepResult::min_slack() const {
  Duration m = kTimeMax;
  for (const CellResult& c : cells) m = std::min(m, c.min_slack);
  return m;
}

bool SweepResult::all_linearizable() const {
  return std::all_of(cells.begin(), cells.end(),
                     [](const CellResult& c) { return c.linearizable; });
}

namespace {

CellResult run_cell(const SweepConfig& sweep, const std::string& algo,
                    Duration eps, Duration delta, Duration d1, Duration d2,
                    Duration c, Duration ell, Profiler* prof) {
  CellResult cell;
  cell.algo = algo;
  cell.eps = eps;
  cell.delta = delta;
  cell.d1 = d1;
  cell.d2 = d2;
  cell.c = c;
  cell.ell = algo == "mmt" ? ell : -1;
  const auto drift = make_drift(sweep.drift);

  // One registry per cell: every seed's observatory probes aggregate into
  // the same slack histograms. The flight recorder rides along the same
  // way — one ring per cell, every seed's deliveries land in its channel
  // histogram — to feed the cost table's p99 channel-delivery column.
  MetricsRegistry reg;
  FlightRecorder flight;
  ObsOptions oo;
  oo.registry = &reg;
  oo.slack = true;
  oo.flight = &flight;
  oo.profile = prof;  // sweep-wide aggregation (null unless cfg.profile)

  RwRunConfig rc;
  rc.num_nodes = sweep.num_nodes;
  rc.d1 = d1;
  rc.d2 = d2;
  rc.eps = eps;
  rc.c = c;
  rc.delta = delta;
  rc.super = algo != "L";
  rc.ops_per_node = sweep.ops_per_node;
  rc.think_max = sweep.think_max;
  rc.write_fraction = sweep.write_fraction;
  rc.horizon = sweep.horizon;
  rc.obs = &oo;

  Samples reads, writes;
  for (const std::uint64_t seed : sweep.seeds) {
    rc.seed = seed;
    RwRunResult run;
    if (algo == "L") {
      run = run_rw_timed(rc);
    } else if (algo == "S") {
      run = run_rw_clock(rc, *drift);
    } else if (algo == "baseline") {
      run = run_rw_sliced(rc, *drift);
    } else {
      run = run_rw_mmt(rc, *drift, ell, /*k=*/1);
    }
    for (const Duration l : latencies(run.ops, Operation::Kind::kRead)) {
      reads.add(static_cast<double>(l));
    }
    for (const Duration l : latencies(run.ops, Operation::Kind::kWrite)) {
      writes.add(static_cast<double>(l));
    }
    cell.linearizable =
        cell.linearizable && static_cast<bool>(check_linearizable(run.ops, rc.v0));
    cell.events += run.events.size();
    cell.min_slack = std::min(cell.min_slack, run.min_slack);
    cell.min_slack_ceps = std::min(cell.min_slack_ceps, run.min_slack_ceps);
    cell.min_slack_delivery =
        std::min(cell.min_slack_delivery, run.min_slack_delivery);
    cell.min_slack_thm47 = std::min(cell.min_slack_thm47, run.min_slack_thm47);
    cell.min_slack_mmt = std::min(cell.min_slack_mmt, run.min_slack_mmt);
    cell.slack_violations += run.slack_violations;
    ++cell.seeds;
  }
  cell.reads = reads.count();
  cell.writes = writes.count();
  cell.read_p50 = reads.percentile(50);
  cell.read_p99 = reads.percentile(99);
  cell.write_p50 = writes.percentile(50);
  cell.write_p99 = writes.percentile(99);
  if (flight.channel_hist().count() > 0) {
    cell.chan_p99 = static_cast<double>(flight.channel_hist().p99());
  }

  if (algo == "L") {
    // Lemma 6.1/6.2 (timed model): d2' = d2.
    cell.bound_read = c + delta;
    cell.bound_write = d2 - c;
  } else if (algo == "S") {
    cell.bound_read = 2 * eps + delta + c;
    cell.bound_write = d2 + 2 * eps - c;
  } else if (algo == "baseline") {
    cell.bound_read = 8 * eps;            // 4u, u = 2 eps
    cell.bound_write = d2 + 6 * eps;      // d2 + 3u
  } else {
    // Theorem 5.2 with k = 1: d2' = d2 + 2 eps + ell.
    cell.bound_read = 2 * eps + delta + c;
    cell.bound_write = d2 + 2 * eps + ell - c;
  }
  return cell;
}

}  // namespace

SweepResult run_sweep(const SweepConfig& cfg) {
  SweepResult result;
  result.config = cfg;
  std::optional<Profiler> prof;
  if (cfg.profile) prof.emplace();
  for (const std::string& algo : cfg.algos) {
    const std::vector<Duration> ells =
        algo == "mmt" ? cfg.ell : std::vector<Duration>{-1};
    for (const Duration eps : cfg.eps) {
      for (const Duration delta : cfg.delta) {
        for (const Duration d1 : cfg.d1) {
          for (const Duration d2 : cfg.d2) {
            if (d1 > d2) continue;
            for (const Duration c : cfg.c) {
              for (const Duration ell : ells) {
                result.cells.push_back(run_cell(cfg, algo, eps, delta, d1,
                                                d2, c, ell,
                                                prof ? &*prof : nullptr));
              }
            }
          }
        }
      }
    }
  }
  if (prof.has_value()) {
    result.prof = prof->report();
    result.profiled = true;
  }
  return result;
}

void write_markdown(const SweepResult& result, std::ostream& os) {
  const SweepConfig& cfg = result.config;
  os << "Section 6.3 cost comparison — generated by `tools/psc-report` "
        "(latencies in µs over "
     << cfg.seeds.size() << " seed(s), " << cfg.num_nodes << " nodes, "
     << cfg.ops_per_node << " ops/node, drift `" << cfg.drift << "`).\n"
     << "Bounds: L = Lemma 6.1/6.2 (timed model), S = Theorem 6.5 "
        "(Simulation 1 on ε-clocks), baseline = [10] with u = 2ε. The S "
        "and mmt bounds are *clock-time* bounds — measured real-time "
        "latencies may exceed them by up to 2ε of accumulated drift "
        "(harness.hpp). `min slack` is the minimum signed distance to any "
        "governing bound observed by the bound-slack observatory; a "
        "negative value is a bound violation.\n\n";
  os << "| algo | ε | d1 | d2 | c | reads | read p50 | read p99 | read "
        "bound | writes | write p50 | write p99 | write bound | chan p99 "
        "| lin | min slack |\n";
  os << "|---|---|---|---|---|---|---|---|---|---|---|---|---|---|---|\n";
  const auto cell_us = [&os](double v) {
    if (std::isfinite(v)) {
      os << us(v);
    } else {
      os << "-";
    }
  };
  for (const CellResult& c : result.cells) {
    os << "| " << c.algo;
    if (c.ell >= 0) os << " (ℓ=" << us(c.ell) << ")";
    os << " | " << us(c.eps) << " | " << us(c.d1) << " | " << us(c.d2)
       << " | " << us(c.c) << " | " << c.reads << " | ";
    cell_us(c.read_p50);
    os << " | ";
    cell_us(c.read_p99);
    os << " | " << us(c.bound_read) << " | " << c.writes << " | ";
    cell_us(c.write_p50);
    os << " | ";
    cell_us(c.write_p99);
    os << " | " << us(c.bound_write) << " | ";
    cell_us(c.chan_p99);
    os << " | " << (c.linearizable ? "yes" : "NO") << " | ";
    if (c.min_slack < kTimeMax) {
      os << us(c.min_slack);
    } else {
      os << "-";
    }
    os << " |\n";
  }
  os << "\n";
  const Duration m = result.min_slack();
  os << "Min bound slack across the sweep: ";
  if (m < kTimeMax) {
    os << us(m) << " µs";
  } else {
    os << "not measured";
  }
  os << "; all cells linearizable: "
     << (result.all_linearizable() ? "yes" : "NO") << ".\n";
  if (result.profiled && result.prof.iterations > 0) {
    os << "\nExecutor self-time across the sweep (sampling microprofiler, "
          "direct per-phase measurement):\n\n```\n";
    write_prof_table(os, result.prof);
    os << "```\n";
  }
}

void write_json(const SweepResult& result, std::ostream& os) {
  for (const CellResult& c : result.cells) {
    os << "{\"bench\":\"psc_report\",\"algo\":\"" << c.algo
       << "\",\"nodes\":" << result.config.num_nodes
       << ",\"eps_ns\":" << c.eps << ",\"delta_ns\":" << c.delta
       << ",\"d1_ns\":" << c.d1 << ",\"d2_ns\":" << c.d2
       << ",\"c_ns\":" << c.c;
    if (c.ell >= 0) os << ",\"ell_ns\":" << c.ell;
    os << ",\"seeds\":" << c.seeds << ",\"events\":" << c.events
       << ",\"reads\":" << c.reads << ",\"writes\":" << c.writes
       << ",\"read_p50_ns\":";
    put_cell_number(os, c.read_p50);
    os << ",\"read_p99_ns\":";
    put_cell_number(os, c.read_p99);
    os << ",\"write_p50_ns\":";
    put_cell_number(os, c.write_p50);
    os << ",\"write_p99_ns\":";
    put_cell_number(os, c.write_p99);
    os << ",\"chan_p99_ns\":";
    put_cell_number(os, c.chan_p99);
    os << ",\"bound_read_ns\":" << c.bound_read
       << ",\"bound_write_ns\":" << c.bound_write << ",\"linearizable\":"
       << (c.linearizable ? "true" : "false");
    if (c.min_slack < kTimeMax) os << ",\"min_slack_ns\":" << c.min_slack;
    if (c.min_slack_ceps < kTimeMax) {
      os << ",\"min_slack_ceps_ns\":" << c.min_slack_ceps;
    }
    if (c.min_slack_delivery < kTimeMax) {
      os << ",\"min_slack_delivery_ns\":" << c.min_slack_delivery;
    }
    if (c.min_slack_thm47 < kTimeMax) {
      os << ",\"min_slack_thm47_ns\":" << c.min_slack_thm47;
    }
    if (c.min_slack_mmt < kTimeMax) {
      os << ",\"min_slack_mmt_ns\":" << c.min_slack_mmt;
    }
    os << ",\"slack_violations\":" << c.slack_violations << "}\n";
  }
}

std::string update_markdown_region(const std::string& text,
                                   const std::string& body) {
  const std::string begin = "<!-- psc-report:begin -->";
  const std::string end = "<!-- psc-report:end -->";
  const auto b = text.find(begin);
  PSC_CHECK(b != std::string::npos, "marker '" << begin << "' not found");
  const auto e = text.find(end, b);
  PSC_CHECK(e != std::string::npos, "marker '" << end << "' not found");
  std::string out = text.substr(0, b + begin.size());
  out += "\n";
  out += body;
  out += text.substr(e);
  return out;
}

}  // namespace psc
