#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>

#include "util/check.hpp"

namespace psc {

void Gauge::set(double v) {
  last_ = v;
  if (n_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  sum_ += v;
  ++n_;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1, 0) {
  PSC_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                    bounds_.end(),
            "histogram bounds must be strictly increasing");
  // Recognize the zero-centered doubling ladder slack_bounds() builds
  // (-lo*2^(m-1) ... -lo, 0, lo ... lo*2^(m-1)): its bucket index is a
  // function of the sample's binary exponent, which add() computes in a
  // handful of arithmetic ops instead of a binary search whose serially
  // dependent loads dominate the probe hot path. Doubling is exact in
  // floating point, so the equality tests below are not brittle.
  const std::size_t n = bounds_.size();
  if (n >= 3 && n % 2 == 1) {
    const std::size_t m = n / 2;
    const double lo = bounds_[m + 1];
    bool ok = bounds_[m] == 0.0 && lo > 0.0 && std::isfinite(bounds_[n - 1]);
    double expect = lo;
    for (std::size_t k = 0; ok && k < m; ++k) {
      ok = bounds_[m + 1 + k] == expect && bounds_[m - 1 - k] == -expect;
      expect *= 2.0;
    }
    if (ok) {
      pow2_mid_ = m;
      pow2_inv_lo_ = 1.0 / lo;
    }
  }
}

std::vector<double> Histogram::linear_bounds(double lo, double hi,
                                             std::size_t n) {
  PSC_CHECK(n >= 1 && hi > lo, "bad linear bounds lo=" << lo << " hi=" << hi);
  std::vector<double> out;
  out.reserve(n + 1);
  for (std::size_t k = 0; k <= n; ++k) {
    out.push_back(lo + (hi - lo) * static_cast<double>(k) /
                           static_cast<double>(n));
  }
  return out;
}

std::vector<double> Histogram::exponential_bounds(double lo, double factor,
                                                  std::size_t n) {
  PSC_CHECK(n >= 1 && lo > 0 && factor > 1,
            "bad exponential bounds lo=" << lo << " factor=" << factor);
  std::vector<double> out;
  out.reserve(n);
  double b = lo;
  for (std::size_t k = 0; k < n; ++k) {
    out.push_back(b);
    b *= factor;
  }
  return out;
}

double Histogram::percentile(double p) const {
  // NaN on empty data, matching Samples::percentile: a zero-sample series
  // still renders (write_jsonl maps non-finite values to 0).
  if (n_ == 0) return std::numeric_limits<double>::quiet_NaN();
  const PercentileCut cut =
      percentile_cut(buckets_.data(), buckets_.size(), n_, p);
  if (!cut.valid) return max_;
  // Interpolate inside the selected bucket: [lower, upper].
  const std::size_t b = cut.bucket;
  const double lower = b == 0 ? min_ : bounds_[b - 1];
  const double upper = b < bounds_.size() ? bounds_[b] : max_;
  const double target =
      std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(n_);
  const double frac = (target - static_cast<double>(cut.below)) /
                      static_cast<double>(buckets_[b]);
  const double v = lower + (upper - lower) * std::clamp(frac, 0.0, 1.0);
  return std::clamp(v, min_, max_);
}

MetricId MetricsRegistry::intern(std::string_view name) {
  const auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  const MetricId id = static_cast<MetricId>(slots_.size());
  auto slot = std::make_unique<Slot>();
  slot->name = std::string(name);
  slot->kind = Kind::kCounter;  // provisional; fixed by the typed getter
  index_.emplace(slot->name, id);
  slots_.push_back(std::move(slot));
  return id;
}

const std::string& MetricsRegistry::name(MetricId id) const {
  PSC_CHECK(id < slots_.size(), "unknown metric id " << id);
  return slots_[id]->name;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const MetricId id = intern(name);
  Slot& s = *slots_[id];
  if (!s.c && !s.g && !s.h) {
    s.kind = Kind::kCounter;
    s.c = std::make_unique<Counter>();
  }
  PSC_CHECK(s.kind == Kind::kCounter && s.c,
            "metric '" << s.name << "' already registered with another kind");
  return *s.c;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const MetricId id = intern(name);
  Slot& s = *slots_[id];
  if (!s.c && !s.g && !s.h) {
    s.kind = Kind::kGauge;
    s.g = std::make_unique<Gauge>();
  }
  PSC_CHECK(s.kind == Kind::kGauge && s.g,
            "metric '" << s.name << "' already registered with another kind");
  return *s.g;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  const MetricId id = intern(name);
  Slot& s = *slots_[id];
  if (!s.c && !s.g && !s.h) {
    s.kind = Kind::kHistogram;
    s.h = std::make_unique<Histogram>(std::move(bounds));
  }
  PSC_CHECK(s.kind == Kind::kHistogram && s.h,
            "metric '" << s.name << "' already registered with another kind");
  return *s.h;
}

const MetricsRegistry::Slot* MetricsRegistry::find(std::string_view name,
                                                   Kind kind) const {
  const auto it = index_.find(std::string(name));
  if (it == index_.end()) return nullptr;
  const Slot& s = *slots_[it->second];
  return s.kind == kind ? &s : nullptr;
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  const Slot* s = find(name, Kind::kCounter);
  return s ? s->c.get() : nullptr;
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  const Slot* s = find(name, Kind::kGauge);
  return s ? s->g.get() : nullptr;
}

const Histogram* MetricsRegistry::find_histogram(
    std::string_view name) const {
  const Slot* s = find(name, Kind::kHistogram);
  return s ? s->h.get() : nullptr;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

namespace {

// JSON has no inf/nan; empty metrics report 0.
void put_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << 0;
    return;
  }
  os << v;
}

}  // namespace

void MetricsRegistry::write_jsonl(std::ostream& os) const {
  for (const auto& slot : slots_) {
    const Slot& s = *slot;
    os << "{\"name\":\"" << json_escape(s.name) << "\"";
    switch (s.kind) {
      case Kind::kCounter:
        os << ",\"type\":\"counter\",\"value\":" << (s.c ? s.c->value() : 0);
        break;
      case Kind::kGauge: {
        os << ",\"type\":\"gauge\",\"samples\":" << s.g->samples()
           << ",\"last\":";
        put_number(os, s.g->last());
        os << ",\"min\":";
        put_number(os, s.g->min());
        os << ",\"max\":";
        put_number(os, s.g->max());
        os << ",\"mean\":";
        put_number(os, s.g->mean());
        break;
      }
      case Kind::kHistogram: {
        const Histogram& h = *s.h;
        os << ",\"type\":\"histogram\",\"count\":" << h.count() << ",\"sum\":";
        put_number(os, h.sum());
        os << ",\"min\":";
        put_number(os, h.min());
        os << ",\"max\":";
        put_number(os, h.max());
        os << ",\"p50\":";
        put_number(os, h.p50());
        os << ",\"p99\":";
        put_number(os, h.p99());
        os << ",\"bounds\":[";
        for (std::size_t k = 0; k < h.bounds().size(); ++k) {
          if (k) os << ",";
          put_number(os, h.bounds()[k]);
        }
        os << "],\"buckets\":[";
        for (std::size_t k = 0; k < h.buckets().size(); ++k) {
          if (k) os << ",";
          os << h.buckets()[k];
        }
        os << "]";
        break;
      }
    }
    os << "}\n";
  }
}

}  // namespace psc
