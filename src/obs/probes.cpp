#include "obs/probes.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "channel/channel.hpp"
#include "core/action.hpp"
#include "mmt/mmt_node.hpp"
#include "obs/trace_export.hpp"
#include "runtime/executor.hpp"
#include "transform/buffers.hpp"

namespace psc {

std::vector<double> duration_bounds() {
  return Histogram::exponential_bounds(100.0, 2.0, 24);
}

// --- ClockSkewProbe --------------------------------------------------------

ClockSkewProbe::ClockSkewProbe(
    MetricsRegistry& reg,
    std::vector<std::shared_ptr<const ClockTrajectory>> trajs, Duration eps,
    ChromeTraceWriter* trace)
    : trajs_(std::move(trajs)), eps_(eps), trace_(trace) {
  // Bounds extend past eps so violations land in real buckets, not just
  // the overflow bucket.
  const double hi = eps > 0 ? static_cast<double>(eps) * 1.25 : 1.0;
  abs_hist_ = &reg.histogram("clock.skew_ns",
                             Histogram::linear_bounds(0.0, hi, 25));
  violations_ = &reg.counter("clock.skew_violations");
  reg.gauge("clock.eps_ns").set(static_cast<double>(eps));
  node_skew_.reserve(trajs_.size());
  for (std::size_t i = 0; i < trajs_.size(); ++i) {
    node_skew_.push_back(
        &reg.gauge("clock.skew_ns.node" + std::to_string(i)));
  }
}

void ClockSkewProbe::sample(int node, Time now, Time clock) {
  const Duration skew = clock - now;
  const Duration abs = skew < 0 ? -skew : skew;
  if (node >= 0 && static_cast<std::size_t>(node) < node_skew_.size()) {
    node_skew_[static_cast<std::size_t>(node)]->set(
        static_cast<double>(skew));
  }
  abs_hist_->add(static_cast<double>(abs));
  max_abs_skew_ = std::max(max_abs_skew_, abs);
  if (abs > eps_) violations_->add();
  if (trace_ && node >= 0) {
    trace_->counter("clock skew (ns)", "node" + std::to_string(node), now,
                    static_cast<double>(skew));
  }
}

void ClockSkewProbe::on_time_advance(Time /*from*/, Time to) {
  for (std::size_t i = 0; i < trajs_.size(); ++i) {
    sample(static_cast<int>(i), to, trajs_[i]->clock_at(to));
  }
}

void ClockSkewProbe::on_event(const TimedEvent& e, const Machine& /*owner*/) {
  if (e.clock == kNoClockTag) return;
  // Event-attached clock readings re-check the band at the exact instants
  // actions fired (between time advances nothing changes, but the owner's
  // clock at an event may belong to a node the advance-time sweep indexes
  // differently — use the action's node when it has one).
  sample(e.action.node, e.time, e.clock);
}

// --- ChannelLatencyProbe ---------------------------------------------------

ChannelLatencyProbe::ChannelLatencyProbe(MetricsRegistry& reg, Duration d1,
                                         Duration d2,
                                         const MessageIndex* shared)
    : d1_(d1), d2_(d2), index_(shared != nullptr ? shared : &own_) {
  const double lo = static_cast<double>(d1);
  const double hi = static_cast<double>(std::max(d2, d1 + 1));
  latency_ = &reg.histogram("channel.latency_ns",
                            Histogram::linear_bounds(lo, hi, 20));
  delivered_ = &reg.counter("channel.delivered");
  violations_ = &reg.counter("channel.latency_violations");
  reg.gauge("channel.d1_ns").set(lo);
  reg.gauge("channel.d2_ns").set(static_cast<double>(d2));
}

void ChannelLatencyProbe::on_event(const TimedEvent& e,
                                   const Machine& owner) {
  if (!e.action.msg.has_value()) return;
  // Feed the private index when no shared one was given (a shared index is
  // fed by its owner, attached before us — feeding it twice would be a bug,
  // and const-ness enforces that we cannot).
  if (index_ == &own_) own_.observe(e, kNoSpan);
  // Only the channel's own delivery is bound by [d1, d2]; the composite's
  // internal RECVMSG (receive buffer -> algorithm) may be held longer.
  const MessageIndex::Stage stage = MessageIndex::stage_of(e.action.name);
  if (stage != MessageIndex::Stage::kERecv &&
      stage != MessageIndex::Stage::kRecv) {
    return;
  }
  if (dynamic_cast<const Channel*>(&owner) == nullptr) return;
  const MessageIndex::Record* rec = index_->find(e.action.msg->uid);
  if (rec == nullptr || rec->send_time < 0) return;
  const Duration latency = e.time - rec->send_time;
  latency_->add(static_cast<double>(latency));
  delivered_->add();
  if (latency < d1_ || latency > d2_) violations_->add();
}

// --- Sim1BufferProbe -------------------------------------------------------

Sim1BufferProbe::Sim1BufferProbe(MetricsRegistry& reg,
                                 ChromeTraceWriter* trace)
    : trace_(trace), reg_(reg) {
  recv_occupancy_ = &reg.gauge("sim1.recv.occupancy");
  send_occupancy_ = &reg.gauge("sim1.send.occupancy");
  hold_ = &reg.histogram("sim1.recv.hold_ns", duration_bounds());
}

void Sim1BufferProbe::watch(const ReceiveBuffer* rb) { recv_.push_back(rb); }
void Sim1BufferProbe::watch(const SendBuffer* sb) { send_.push_back(sb); }

void Sim1BufferProbe::sample_occupancy(Time t) {
  std::int64_t r = 0;
  for (const ReceiveBuffer* rb : recv_) {
    r += static_cast<std::int64_t>(rb->queued());
  }
  if (r != last_recv_occ_) {
    last_recv_occ_ = r;
    recv_occupancy_->set(static_cast<double>(r));
    if (trace_) {
      trace_->counter("recv buffer occupancy", "messages", t,
                      static_cast<double>(r));
    }
  }
  std::int64_t s = 0;
  for (const SendBuffer* sb : send_) {
    s += static_cast<std::int64_t>(sb->queued());
  }
  if (s != last_send_occ_) {
    last_send_occ_ = s;
    send_occupancy_->set(static_cast<double>(s));
  }
}

void Sim1BufferProbe::on_event(const TimedEvent& e, const Machine& /*owner*/) {
  if (!recv_.empty() || !send_.empty()) sample_occupancy(e.time);
  if (!e.action.msg.has_value()) return;
  // ERECVMSG: the channel handed (m, c) to the node; the receive buffer may
  // hold it until the local clock reaches c. RECVMSG with the same uid is
  // the release to the algorithm; the difference is the real-time hold.
  if (e.action.name == "ERECVMSG") {
    arrived_.emplace(e.action.msg->uid, e.time);
  } else if (e.action.name == "RECVMSG") {
    const auto it = arrived_.find(e.action.msg->uid);
    if (it == arrived_.end()) return;
    hold_->add(static_cast<double>(e.time - it->second));
    arrived_.erase(it);
  }
}

void Sim1BufferProbe::on_run_end(Time /*now*/) {
  ReceiveBufferStats total;
  for (const ReceiveBuffer* rb : recv_) {
    const ReceiveBufferStats& s = rb->stats();
    total.received += s.received;
    total.buffered += s.buffered;
    total.total_hold += s.total_hold;
    total.max_hold = std::max(total.max_hold, s.max_hold);
  }
  reg_.counter("sim1.recv.received").add(total.received);
  reg_.counter("sim1.recv.buffered").add(total.buffered);
  reg_.counter("sim1.recv.hold_total_clock_ns")
      .add(static_cast<std::uint64_t>(std::max<Duration>(total.total_hold, 0)));
  reg_.gauge("sim1.recv.max_hold_clock_ns")
      .set(static_cast<double>(total.max_hold));
}

// --- MmtProbe --------------------------------------------------------------

MmtProbe::MmtProbe(MetricsRegistry& reg) : reg_(reg) {
  tick_to_action_ =
      &reg.histogram("mmt.tick_to_action_ns", duration_bounds());
  ticks_ = &reg.counter("mmt.ticks");
}

void MmtProbe::watch(const MmtNode* node) { nodes_.push_back(node); }

void MmtProbe::on_event(const TimedEvent& e, const Machine& owner) {
  if (e.action.name == "TICK") {
    last_tick_[e.action.node] = e.time;
    ticks_->add();
    return;
  }
  if (e.action.node == kNoNode) return;
  if (dynamic_cast<const MmtNode*>(&owner) == nullptr) return;
  const auto it = last_tick_.find(e.action.node);
  if (it == last_tick_.end()) return;
  tick_to_action_->add(static_cast<double>(e.time - it->second));
}

void MmtProbe::on_run_end(Time /*now*/) {
  std::uint64_t steps = 0, outputs = 0;
  std::size_t max_pending = 0;
  Duration max_emit_delay = 0;
  for (const MmtNode* n : nodes_) {
    const MmtNodeStats& s = n->stats();
    steps += s.steps;
    outputs += s.outputs;
    max_pending = std::max(max_pending, s.max_pending);
    max_emit_delay = std::max(max_emit_delay, s.max_emit_delay);
  }
  if (nodes_.empty()) return;
  reg_.counter("mmt.steps").add(steps);
  reg_.counter("mmt.outputs").add(outputs);
  reg_.gauge("mmt.max_pending").set(static_cast<double>(max_pending));
  reg_.gauge("mmt.max_emit_delay_ns")
      .set(static_cast<double>(max_emit_delay));
}

// --- SchedulerStatsProbe ---------------------------------------------------

SchedulerStatsProbe::SchedulerStatsProbe(MetricsRegistry& reg,
                                         const Executor& exec)
    : reg_(reg), exec_(exec) {}

void SchedulerStatsProbe::on_run_end(Time /*now*/) {
  const ExecutorStats& s = exec_.stats();
  reg_.counter("exec.events").add(s.events);
  reg_.counter("exec.time_advances").add(s.time_advances);
  reg_.counter("exec.wake.pushes").add(s.wake_pushes);
  reg_.counter("exec.wake.pops").add(s.wake_pops);
  reg_.counter("exec.wake.stale_pops").add(s.wake_stale_pops);
  reg_.counter("exec.wake.compactions").add(s.wake_compactions);
  reg_.counter("exec.wheel.inserts").add(s.wheel.inserts);
  reg_.counter("exec.wheel.due").add(s.wheel.due);
  reg_.counter("exec.wheel.stale_drops").add(s.wheel.stale_drops);
  reg_.counter("exec.wheel.cascades").add(s.wheel.cascades);
  reg_.counter("exec.wheel.compactions").add(s.wheel.compactions);
  reg_.counter("exec.dirty.flushes").add(s.dirty_flushes);
  reg_.counter("exec.dirty.repolls").add(s.dirty_repolls);
  reg_.gauge("exec.dirty.peak").set(static_cast<double>(s.dirty_peak));
  reg_.counter("exec.cand.cache_hits").add(s.cand_cache_hits);
  reg_.gauge("exec.cand.cache_hit_rate").set(s.cache_hit_rate());
  reg_.counter("exec.route.fast").add(s.route_fast);
  reg_.counter("exec.route.classify").add(s.route_classify);
  reg_.gauge("exec.route.fast_path_rate").set(s.fast_path_rate());
  reg_.counter("exec.route.fanout_inputs").add(s.fanout_inputs);
  reg_.counter("exec.route.fanout_classify_calls")
      .add(s.fanout_classify_calls);
  reg_.counter("exec.kind.hits").add(s.kind_hits);
  reg_.counter("exec.kind.resolves").add(s.kind_resolves);
  reg_.counter("exec.kind.memo_hits").add(s.kind_memo_hits);
  reg_.gauge("exec.kind.interned").set(
      static_cast<double>(exec_.interned_kind_count()));
}

}  // namespace psc
