// Built-in probes: measure the paper's quantitative claims during a run.
//
//   ClockSkewProbe      |c_i(t) - t| per node vs. the configured eps — the
//                       C_eps predicate (Def 2.5) as a live gauge.
//   ChannelLatencyProbe per-message channel delay vs. [d1, d2] — the edge
//                       automaton's delivery window (Figure 1). Sends and
//                       deliveries are matched exactly by message uid
//                       (Section 3's uniqueness assumption, made load-
//                       bearing) through a MessageIndex (obs/causal.hpp) —
//                       either a shared one fed by a CausalTraceProbe or a
//                       private one the probe feeds itself; only deliveries
//                       performed by a Channel machine are validated, so
//                       the probe is correct in the timed, clock, and MMT
//                       assemblies alike.
//   Sim1BufferProbe     Simulation 1's cost: receive/send-buffer occupancy
//                       over time plus per-message hold time (ERECVMSG ->
//                       RECVMSG), the quantity Section 7.2 argues is small.
//   MmtProbe            tick-to-action latency and per-node step/queue
//                       stats of the MMT transformation (Definition 5.1).
//   SchedulerStatsProbe end-of-run snapshot of the executor's ExecutorStats
//                       self-metrics (wake calendar, dirty set, routing)
//                       into the registry, so scheduler behaviour lands in
//                       the same metrics document as the model quantities.
//
// Every probe writes into a MetricsRegistry; probes given a
// ChromeTraceWriter additionally stream counter tracks into the trace so
// the quantities render as line charts under the event timeline.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "clock/trajectory.hpp"
#include "obs/causal.hpp"
#include "obs/metrics.hpp"
#include "obs/probe.hpp"

namespace psc {

class ReceiveBuffer;
class SendBuffer;
class MmtNode;
class ChromeTraceWriter;
class Executor;

class ClockSkewProbe final : public Probe {
 public:
  // One trajectory per node; eps is the C_eps band every clock must stay
  // inside. Skew is sampled at every time-passage step (and from every
  // clock-tagged event), so the gauge covers exactly the instants at which
  // the composition can act.
  ClockSkewProbe(MetricsRegistry& reg,
                 std::vector<std::shared_ptr<const ClockTrajectory>> trajs,
                 Duration eps, ChromeTraceWriter* trace = nullptr);

  void on_time_advance(Time from, Time to) override;
  void on_event(const TimedEvent& e, const Machine& owner) override;

  Duration max_abs_skew() const { return max_abs_skew_; }
  std::uint64_t violations() const { return violations_->value(); }

 private:
  void sample(int node, Time now, Time clock);

  std::vector<std::shared_ptr<const ClockTrajectory>> trajs_;
  Duration eps_;
  ChromeTraceWriter* trace_;
  std::vector<Gauge*> node_skew_;  // signed skew, one gauge per node
  Histogram* abs_hist_;            // |skew| distribution, all nodes
  Counter* violations_;            // samples with |skew| > eps
  Duration max_abs_skew_ = 0;
};

class ChannelLatencyProbe final : public Probe {
 public:
  // [d1, d2] are the *physical* bounds of the channels in the composition
  // (what Channel was constructed with), not the algorithm's design bounds.
  // With `shared` set the probe reads send times from an index fed by
  // someone attached earlier in the probe list (the CausalTraceProbe);
  // otherwise it owns and feeds a private one. Either way the uid-matching
  // logic lives in MessageIndex — there is exactly one implementation.
  ChannelLatencyProbe(MetricsRegistry& reg, Duration d1, Duration d2,
                      const MessageIndex* shared = nullptr);

  void on_event(const TimedEvent& e, const Machine& owner) override;

  std::uint64_t delivered() const { return delivered_->value(); }
  std::uint64_t violations() const { return violations_->value(); }

 private:
  Duration d1_, d2_;
  const MessageIndex* index_;  // shared or &own_
  MessageIndex own_;           // fed only when no shared index was given
  Histogram* latency_;
  Counter* delivered_;
  Counter* violations_;
};

class Sim1BufferProbe final : public Probe {
 public:
  explicit Sim1BufferProbe(MetricsRegistry& reg,
                           ChromeTraceWriter* trace = nullptr);

  // Register the buffers of the assembled system (non-owning; they must
  // outlive the run). Hold times are derived from the event stream, so the
  // probe works even with no buffers registered — occupancy and the
  // end-of-run ReceiveBufferStats aggregation then stay empty.
  void watch(const ReceiveBuffer* rb);
  void watch(const SendBuffer* sb);

  void on_event(const TimedEvent& e, const Machine& owner) override;
  void on_run_end(Time now) override;

 private:
  void sample_occupancy(Time t);

  std::vector<const ReceiveBuffer*> recv_;
  std::vector<const SendBuffer*> send_;
  ChromeTraceWriter* trace_;
  MetricsRegistry& reg_;
  Gauge* recv_occupancy_;
  Gauge* send_occupancy_;
  Histogram* hold_;  // per-message ERECVMSG -> RECVMSG hold time (real ns)
  std::unordered_map<std::uint64_t, Time> arrived_;  // uid -> ERECVMSG time
  std::int64_t last_recv_occ_ = -1;
  std::int64_t last_send_occ_ = -1;
};

class MmtProbe final : public Probe {
 public:
  explicit MmtProbe(MetricsRegistry& reg);

  // Register nodes for end-of-run MmtNodeStats aggregation.
  void watch(const MmtNode* node);

  void on_event(const TimedEvent& e, const Machine& owner) override;
  void on_run_end(Time now) override;

 private:
  MetricsRegistry& reg_;
  std::vector<const MmtNode*> nodes_;
  std::unordered_map<int, Time> last_tick_;  // node -> last TICK time
  Histogram* tick_to_action_;
  Counter* ticks_;
};

class SchedulerStatsProbe final : public Probe {
 public:
  // Snapshots `exec.stats()` into the registry at run end. Non-owning; the
  // executor must outlive the run (it does — it drives it).
  SchedulerStatsProbe(MetricsRegistry& reg, const Executor& exec);

  void on_run_end(Time now) override;

 private:
  MetricsRegistry& reg_;
  const Executor& exec_;
};

// Default duration-histogram bounds: exponential from 100ns to ~1.7s.
std::vector<double> duration_bounds();

}  // namespace psc
