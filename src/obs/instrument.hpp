// One-stop per-run instrumentation assembly.
//
// ObsOptions is what callers configure (usually from command-line flags or
// environment variables): a MetricsRegistry to aggregate into and/or a
// stream to receive a Chrome trace. RunObserver turns the options into a
// concrete set of probes for one Executor run, owns them, and wires shared
// state (all metric probes write into the same registry; probes that can
// render counter tracks share the chrome writer).
//
// Usage (what rw/harness.cpp does):
//   RunObserver obs(cfg.obs);             // null options -> inert observer
//   obs.add_clock_skew(trajs, eps);
//   obs.add_channel_latency(d1, d2);
//   auto* bp = obs.add_buffers();         // then bp->watch(...) each buffer
//   obs.attach(exec);
//   exec.run();                           // chrome doc finalized at run end
#pragma once

#include <iosfwd>
#include <memory>
#include <vector>

#include "clock/trajectory.hpp"
#include "obs/metrics.hpp"
#include "obs/observatory.hpp"
#include "obs/probes.hpp"
#include "obs/trace_export.hpp"

namespace psc {

class Executor;
class FlightRecorder;
class InvariantProbe;
class Profiler;

struct ObsOptions {
  // Sink for the built-in metric probes; nullptr disables them.
  MetricsRegistry* registry = nullptr;
  // Destination for a Chrome trace_event document; nullptr disables it.
  // The stream must outlive the run.
  std::ostream* chrome_out = nullptr;
  // When false, the chrome trace carries only counter tracks (no per-event
  // instants) — useful for long runs where the event stream would dominate.
  bool events_in_trace = true;
  // Caller-owned causal-tracing probe (obs/causal.hpp). attach() wires it
  // before the metric probes (so ChannelLatencyProbe can read its
  // MessageIndex) and hands it the shared chrome writer for flow events.
  // The caller keeps it to query the DAG after the run.
  CausalTraceProbe* causal = nullptr;
  // Snapshot the executor's scheduler self-metrics (ExecutorStats) into the
  // registry at run end. Off by default so runs that pin exact registry
  // contents are unaffected.
  bool exec_stats = false;
  // Caller-owned online invariant checker (analysis/trace_check.hpp).
  // attach() wires it after the causal probe; the caller keeps it to read
  // the diagnostic report after the run.
  InvariantProbe* lint = nullptr;
  // Enable the bound-slack observatory (obs/observatory.hpp): the harness
  // calls add_slack() with the model parameters of the assembly it builds,
  // which is a no-op unless this is set. Off by default so runs that pin
  // exact registry contents are unaffected.
  bool slack = false;
  // Caller-owned windowed time-series sink, sampled on its configured
  // simulated-time cadence by a probe attach() creates (after every metric
  // probe, so each boundary snapshot sees that instant's final state). The
  // caller keeps it to export or inspect the windows after the run.
  TimeSeries* timeseries = nullptr;
  // Caller-owned binary flight recorder (obs/flight.hpp). attach() hands it
  // to Executor::attach_flight — not a Probe: the executor writes its ring
  // directly from the record path. The caller keeps it to snapshot/dump or
  // export histogram percentiles after the run.
  FlightRecorder* flight = nullptr;
  // Caller-owned sampling microprofiler (obs/prof.hpp). attach() hands it
  // to Executor::attach_profiler — like the flight recorder, not a Probe:
  // the scheduler loop brackets its own phases. With a chrome writer also
  // configured, attach() additionally streams per-phase counter tracks
  // into the trace. The caller keeps it to report()/export_metrics() after
  // the run.
  Profiler* profile = nullptr;

  bool enabled() const {
    return registry != nullptr || chrome_out != nullptr || causal != nullptr ||
           lint != nullptr || timeseries != nullptr || flight != nullptr ||
           profile != nullptr;
  }
};

class RunObserver {
 public:
  // `opts` may be null or empty: every add_* becomes a no-op returning
  // nullptr and attach() attaches nothing — callers need no branching.
  explicit RunObserver(const ObsOptions* opts);
  ~RunObserver();

  RunObserver(const RunObserver&) = delete;
  RunObserver& operator=(const RunObserver&) = delete;

  bool active() const { return opts_.enabled(); }
  MetricsRegistry* registry() { return opts_.registry; }
  // The shared chrome writer (null when no chrome_out was configured).
  ChromeTraceWriter* chrome();

  ClockSkewProbe* add_clock_skew(
      std::vector<std::shared_ptr<const ClockTrajectory>> trajs,
      Duration eps);
  ChannelLatencyProbe* add_channel_latency(Duration d1, Duration d2);
  Sim1BufferProbe* add_buffers();
  MmtProbe* add_mmt();
  // Bound-slack observatory; no-op (nullptr) unless options.slack is set
  // and a registry sink exists. The harness passes the model parameters of
  // the assembly it actually built.
  BoundSlackProbe* add_slack(const SlackOptions& slack_opts);
  // The slack probe constructed by add_slack (nullptr when none) — read
  // min-slack summaries from it after the run.
  const BoundSlackProbe* slack() const { return slack_probe_; }
  // Any custom probe (takes ownership).
  Probe* add(std::unique_ptr<Probe> probe);

  // Attaches every probe to the executor: event-trace probe first (so
  // later probes may stream into an open document), then the caller's
  // causal probe (so probes sharing its MessageIndex read a fed index),
  // then the constructed metric probes.
  void attach(Executor& exec);

 private:
  // The registry metric probes write into: the configured one, or a private
  // scratch registry for chrome-only runs (counter tracks still need
  // somewhere to keep their gauges).
  MetricsRegistry* sink();

  ObsOptions opts_;
  std::unique_ptr<ChromeTraceProbe> chrome_probe_;   // when events_in_trace
  std::unique_ptr<ChromeTraceWriter> bare_writer_;   // counters-only trace
  std::unique_ptr<MetricsRegistry> scratch_;
  std::unique_ptr<TimeSeriesProbe> ts_probe_;        // when opts_.timeseries
  BoundSlackProbe* slack_probe_ = nullptr;           // owned via probes_
  std::vector<std::unique_ptr<Probe>> probes_;
};

}  // namespace psc
