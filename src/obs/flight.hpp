// Always-on binary flight recorder (docs/OBSERVABILITY.md, "Flight
// recorder").
//
// Every existing observability path — Probe dispatch, JSONL/Chrome text
// export, the causal DAG — is per-event allocation- and string-heavy, so at
// million-machine scale it gets switched off exactly when a PSC1xx bound
// violation would be most interesting. The flight recorder is the cheap
// substitute that can stay on: the executor writes one fixed-size 128-byte
// POD per event (interned kind id, owner, uid, times, value slots — no
// strings, no allocation) into per-machine-shard ring buffers, so the
// last-N-events window is always available for a crash-style dump, and
// HDR-style log-bucketed latency histograms (channel delivery, Simulation-1
// buffer hold, per-action-name step latency) are fed online from the same
// PODs. bench_executor gates the whole record path under 25% of scheduler
// ns/event at >= 65,536 machines — roughly 4x cheaper than the
// record_events TimedEvent stream it replaces (docs/OBSERVABILITY.md,
// "Cost").
//
// Layering: psc_runtime cannot link psc_obs, so everything the executor
// calls per event (record(), bind()) is defined inline in this header —
// the same arrangement as obs/probe.hpp. The cold offline half — snapshot
// serialization ("PSCFLT01" versioned binary), the TimedEvent decoder that
// reconstructs the probe-path stream byte-identically, MetricsRegistry
// export — lives in flight.cpp inside psc_obs, consumed by tools/psc_flight
// and the tests.
//
// Wiring: construct a FlightRecorder, hand it to ExecutorOptions::flight or
// Executor::attach_flight (RunObserver::attach does the latter from
// ObsOptions::flight), run, then snapshot()/dump()/export_metrics(). One
// recorder may observe several executors in sequence (the psc-report sweep
// reuses one per cell across seeds): bind() drops the per-executor kind
// memo while the recorder's own kind/string tables and histograms keep
// aggregating.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <variant>
#include <vector>

#include "core/trace.hpp"
#include "obs/metrics.hpp"  // percentile_cut — shared percentile walk

namespace psc {

// --- log-bucketed histogram ------------------------------------------------

// HDR-style histogram over nonnegative int64 samples (nanoseconds here):
// values below 2^kSubBits are exact, above that each power-of-two octave is
// split into 2^kSubBits sub-buckets, so relative error is bounded by
// 2^-kSubBits (~3%) at every magnitude. Indexing is a bit_width plus a
// shift — no search — and memory is a fixed ~15 KB regardless of sample
// count, which is what lets the recorder feed three of these per event
// inside the bench overhead gate. (MetricsRegistry::Histogram needs its
// bucket range chosen at registration; latencies here span 9 decades.)
class LogHistogram {
 public:
  static constexpr int kSubBits = 5;
  static constexpr std::uint64_t kSub = std::uint64_t{1} << kSubBits;  // 32
  // Highest sample bit position is 62 (int64 max), giving linear indices
  // [0, 32) plus (62 - kSubBits + 1) part-filled octaves of 32.
  static constexpr std::size_t kBuckets = (63 - kSubBits) * kSub;

  LogHistogram() : buckets_(kBuckets, 0) {}

  static std::size_t index(std::uint64_t x) {
    if (x < kSub) return static_cast<std::size_t>(x);
    const int e = 63 - std::countl_zero(x);  // bit position of the msb
    return (static_cast<std::size_t>(e) - kSubBits) * kSub +
           static_cast<std::size_t>(x >> (e - kSubBits));
  }
  // Largest value landing in bucket i (its inclusive upper edge).
  static std::uint64_t bucket_max(std::size_t i) {
    if (i < kSub) return i;
    const std::size_t octave = i / kSub;  // >= 1
    const std::uint64_t top = kSub + i % kSub;
    return ((top + 1) << (octave - 1)) - 1;
  }

  void add(std::int64_t v) {
    const std::uint64_t x = v > 0 ? static_cast<std::uint64_t>(v) : 0;
    ++buckets_[index(x)];
    ++n_;
    sum_ += static_cast<double>(x);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  std::uint64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  std::uint64_t min() const { return n_ ? min_ : 0; }
  std::uint64_t max() const { return n_ ? max_ : 0; }

  // p in [0, 100]: the upper edge of the bucket holding the p-th percentile
  // sample, clamped to the observed max — so the estimate is exact to one
  // sub-bucket (<= 2^-kSubBits relative error) and never exceeds a value
  // actually recorded. 0 when empty. The bucket walk is the shared
  // percentile_cut helper (obs/metrics.hpp); only the bucket -> value
  // mapping (log-bucket upper edge, no interpolation) is HDR-specific.
  std::uint64_t percentile(double p) const {
    if (n_ == 0) return 0;
    const PercentileCut cut = percentile_cut(buckets_.data(), kBuckets, n_, p);
    if (!cut.valid) return max_;
    return std::min(bucket_max(cut.bucket), max_);
  }
  std::uint64_t p50() const { return percentile(50); }
  std::uint64_t p99() const { return percentile(99); }
  std::uint64_t p999() const { return percentile(99.9); }

  const std::vector<std::uint64_t>& buckets() const { return buckets_; }

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t n_ = 0;
  double sum_ = 0;
  std::uint64_t min_ = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_ = 0;
};

// --- the recorded POD ------------------------------------------------------

// How an event's action name relates to the library's messaging
// conventions; computed once per interned kind (never per event) and stored
// both in the kind table and in every record, so offline consumers can
// dispatch without the string table.
enum class FlightClass : std::uint8_t {
  kOther = 0,
  kSend,     // SENDMSG   (user-level send)
  kRecv,     // RECVMSG   (delivery / Sim1 buffer release)
  kESend,    // ESENDMSG  (physical send under Simulation 1)
  kERecv,    // ERECVMSG  (physical delivery under Simulation 1)
  kTick,     // TICK
  kMmtStep,  // MMTSTEP
};

// One ring slot: everything write_trace would emit for the event, with
// every string replaced by an id into the recorder's intern tables. Two
// cache lines, trivially copyable — the snapshot file stores these raw.
// Records are assembled directly in their ring slot; 16-byte alignment
// keeps every slot tiled on exactly two cache lines.
struct alignas(16) FlightRecord {
  static constexpr std::size_t kSlots = 4;  // value slots for args / fields
  // flags bits
  static constexpr std::uint8_t kVisible = 1;   // event visible after hiding
  static constexpr std::uint8_t kHasMsg = 2;    // action carries a message
  static constexpr std::uint8_t kOverflow = 4;  // > kSlots args or fields
  // per-slot value tags
  static constexpr std::uint8_t kNone = 0;    // slot unused / monostate
  static constexpr std::uint8_t kInt = 1;     // slot holds the int64
  static constexpr std::uint8_t kDouble = 2;  // slot holds a bit-cast double
  static constexpr std::uint8_t kString = 3;  // slot holds a string-table id

  std::uint64_t seq;    // global record order: the shard-merge key
  std::int64_t time;    // TimedEvent::time
  std::int64_t clock;   // TimedEvent::clock (kNoClockTag when unclocked)
  std::uint64_t uid;    // message uid (0 without kHasMsg)
  std::int64_t tag;     // message clock_tag (kNoClockTag without one)
  std::int32_t owner;   // TimedEvent::owner
  std::uint32_t kind;   // recorder kind id -> (name, node, peer, class)
  std::uint32_t mkind;  // string id of the message kind (0 without kHasMsg)
  std::uint8_t flags;
  std::uint8_t nargs;
  std::uint8_t nfields;
  std::uint8_t cls;  // FlightClass of `kind`, denormalized
  std::uint8_t arg_tag[kSlots];
  std::uint8_t field_tag[kSlots];
  std::int64_t arg[kSlots];
  std::int64_t field[kSlots];
};
static_assert(sizeof(FlightRecord) == 128, "ring slots are two cache lines");
static_assert(std::is_trivially_copyable_v<FlightRecord>,
              "snapshots store records raw");

// --- uid -> time map for online latency matching ---------------------------

// Open-addressed linear-probe map sized for the in-flight message window
// (send seen, delivery not yet). put/take run once per messaging event on
// the record path. Erasure uses backward-shift deletion rather than
// tombstones: a steady send/receive stream cycles millions of uids through
// a table whose live size is only the wavefront, and tombstones would force
// a rehash every quarter-capacity operations — an allocation on the record
// path, which the bench overhead gate does not forgive.
class UidTimeMap {
 public:
  UidTimeMap() { reset(1024); }

  void put(std::uint64_t uid, Time t) {
    if ((size_ + 1) * 4 >= slots_.size() * 3) grow();
    const std::uint64_t key = uid + 1;  // 0 = empty
    std::size_t i = mix(key) & mask_;
    while (true) {
      Slot& s = slots_[i];
      if (s.key == kEmpty) {
        s.key = key;
        s.t = t;
        ++size_;
        return;
      }
      if (s.key == key) {  // re-send of the same uid: keep the latest leg
        s.t = t;
        return;
      }
      i = (i + 1) & mask_;
    }
  }

  bool take(std::uint64_t uid, Time* out) {
    const std::uint64_t key = uid + 1;
    std::size_t i = mix(key) & mask_;
    while (slots_[i].key != key) {
      if (slots_[i].key == kEmpty) return false;
      i = (i + 1) & mask_;
    }
    *out = slots_[i].t;
    --size_;
    // Backward-shift: pull every cluster entry whose probe chain crosses
    // the freed slot, leaving no tombstone behind.
    std::size_t j = i;
    while (true) {
      j = (j + 1) & mask_;
      const std::uint64_t k = slots_[j].key;
      if (k == kEmpty) break;
      const std::size_t h = mix(k) & mask_;
      if (((j - h) & mask_) >= ((j - i) & mask_)) {
        slots_[i] = slots_[j];
        i = j;
      }
    }
    slots_[i].key = kEmpty;
    return true;
  }

  std::size_t size() const { return size_; }

 private:
  static constexpr std::uint64_t kEmpty = 0;

  struct Slot {
    std::uint64_t key = kEmpty;
    Time t = 0;
  };

  static std::uint64_t mix(std::uint64_t x) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return x;
  }

  void reset(std::size_t cap) {
    slots_.assign(cap, Slot{});
    mask_ = cap - 1;
    size_ = 0;
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    reset(old.size() * 2);
    for (const Slot& s : old) {
      if (s.key == kEmpty) continue;
      std::size_t i = mix(s.key) & mask_;
      while (slots_[i].key != kEmpty) i = (i + 1) & mask_;
      slots_[i] = s;
      ++size_;
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

// --- snapshot --------------------------------------------------------------

struct FlightOptions {
  // Records retained per shard (rounded up to a power of two). The default
  // 8 Ki-record ring is 1 MB/shard: small enough to stay resident in the
  // last-level cache, so the steady-state ring walk costs cache writes
  // instead of DRAM streaming (measured ~2x recorder overhead for an 8 MB
  // ring on the sweep cell). Deeper forensic windows are a knob away
  // (psc-sim --flight-ring=N); the dump-on-violation window rarely needs
  // more than a few thousand events of look-behind.
  std::size_t ring_capacity = std::size_t{1} << 13;
  // Ring shards, selected by owner machine index (rounded up to a power of
  // two). Sharding keeps a chatty region from evicting the whole window;
  // one shard preserves strict global order per ring.
  std::size_t shards = 1;
  // Feed the latency histograms online from the record path. On by default
  // — the bench overhead gate measures this configuration.
  bool histograms = true;
};

// The decoded-side view of a recorder window: intern tables plus the
// retained records merged across shards in seq order. This is exactly what
// the "PSCFLT01" file carries.
struct FlightSnapshot {
  struct Kind {
    std::uint32_t name_id = 0;  // index into strings
    std::int32_t node = kNoNode;
    std::int32_t peer = kNoNode;
    FlightClass cls = FlightClass::kOther;
  };

  std::uint32_t version = 1;
  std::uint64_t total_recorded = 0;  // records ever written
  std::uint64_t dropped = 0;         // evicted by the rings before snapshot
  std::vector<std::string> strings;  // id 0 reserved empty
  std::vector<Kind> kinds;
  std::vector<FlightRecord> records;  // seq-ascending
};

// Versioned binary serialization (magic "PSCFLT01", little-endian,
// record_size stamped so readers reject layout drift). Throws CheckError on
// malformed input.
void write_snapshot(std::ostream& os, const FlightSnapshot& snap);
FlightSnapshot read_snapshot(std::istream& is);

// Reconstructs the TimedEvent stream the probe path would have emitted for
// the retained window — names/kinds resolved from the intern tables,
// TimedEvent::kind left kNoKind (flight ids are not executor ids). With a
// ring that never evicted, trace_to_text(decode(snap)) is byte-identical to
// the live probe stream. Records flagged kOverflow (> kSlots args/fields)
// decode truncated; flight_test pins the shipped workloads well below that.
TimedTrace decode_snapshot(const FlightSnapshot& snap);

// --- the recorder ----------------------------------------------------------

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightOptions opts = {}) : opts_(opts) {
    ring_cap_ = std::bit_ceil(std::max<std::size_t>(opts.ring_capacity, 2));
    shards_.resize(std::bit_ceil(std::max<std::size_t>(opts.shards, 1)));
    shard_mask_ = static_cast<std::uint32_t>(shards_.size() - 1);
    ring_mask_ = ring_cap_ - 1;
    for (Shard& s : shards_) s.buf.resize(ring_cap_);
    strings_.emplace_back();  // id 0: reserved (means "absent")
  }

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Called by the executor at attach and at run() start with its unique
  // instance id: kind ids in TimedEvent::kind are per-executor, so the memo
  // translating them must reset when the recorder changes hands. The
  // recorder's own tables and histograms persist across binds.
  void bind(std::uint64_t exec_uid) {
    if (exec_uid == bound_uid_) return;
    bound_uid_ = exec_uid;
    std::fill(exec_memo_.begin(), exec_memo_.end(), ExecMemo{});
  }

  // The hot path: one POD into the owner's shard ring plus the online
  // latency histograms. No strings are hashed and nothing allocates once
  // the run's kinds have been seen (first occurrence of a kind, a message
  // kind, or a string payload takes the interning slow path). Everything
  // the per-event fill needs — flight kind id, class, the message-kind
  // memo, the step-histogram id — lives in one 12-byte ExecMemo row, so an
  // executor event costs a single table access beyond the ring stores. The
  // record is assembled directly in its ring slot — scalar stores into two
  // cache lines the sequential ring walk keeps prefetched. (Non-temporal
  // stores were tried and rejected: per-record write-combining drains
  // serialize on DRAM write latency and measured ~4x worse than plain
  // stores here.)
  void record(const TimedEvent& e) {
    const ActionKindId kid = e.kind;
    if (kid >= 0) {
      ExecMemo* m;
      if (static_cast<std::size_t>(kid) < exec_memo_.size() &&
          exec_memo_[static_cast<std::size_t>(kid)].fk != kNoFlightKind) {
        m = &exec_memo_[static_cast<std::size_t>(kid)];
      } else {
        m = intern_exec_kind(e);
      }
      fill(e, m->fk, m->cls, &m->mkind, m->step_id);
      return;
    }
    const std::uint32_t fk = intern_legacy_kind(e);
    KindEntry& k = kinds_[fk];
    fill(e, fk, static_cast<std::uint8_t>(k.cls), &k.mkind, k.step_id);
  }

  // --- counters and histograms --------------------------------------------

  std::uint64_t total_recorded() const { return seq_; }
  std::uint64_t retained() const {
    std::uint64_t n = 0;
    for (const Shard& s : shards_) n += std::min<std::uint64_t>(s.head, ring_cap_);
    return n;
  }
  std::uint64_t dropped() const { return seq_ - retained(); }
  std::size_t ring_capacity() const { return ring_cap_; }
  std::size_t shard_count() const { return shards_.size(); }

  // SENDMSG->RECVMSG (timed model) / ESENDMSG->ERECVMSG (Simulation 1)
  // channel latency.
  const LogHistogram& channel_hist() const { return chan_; }
  // ERECVMSG->RECVMSG Simulation-1 receive-buffer hold.
  const LogHistogram& hold_hist() const { return hold_; }
  // Gap to the owner's previous event, bucketed by the name of the later
  // event; nullptr until an event with that name is recorded.
  const LogHistogram* step_hist(std::string_view name) const {
    const auto it = string_ids_.find(std::string(name));
    if (it == string_ids_.end()) return nullptr;
    const auto sit = step_by_name_.find(it->second);
    return sit == step_by_name_.end() ? nullptr : steps_[sit->second].get();
  }
  // Action names with a step histogram, intern order.
  std::vector<std::string> step_names() const {
    std::vector<std::pair<std::uint32_t, std::string>> named;
    for (const auto& [id, h] : step_by_name_) named.emplace_back(id, strings_[id]);
    std::sort(named.begin(), named.end());
    std::vector<std::string> out;
    out.reserve(named.size());
    for (auto& [id, n] : named) out.push_back(std::move(n));
    return out;
  }

  // --- cold half (flight.cpp) ---------------------------------------------

  // The retained window, shards merged in seq order, with the intern tables.
  FlightSnapshot snapshot() const;
  // snapshot() serialized to `path`; false (with no partial file kept
  // guarantee) when the file cannot be written.
  bool dump(const std::string& path) const;
  // Publishes histogram percentiles as gauges: flight.channel.p50_ns /
  // .p99_ns / .p999_ns (+ .count), flight.hold.*, flight.step.<NAME>.*,
  // plus flight.recorded / flight.dropped counters.
  void export_metrics(MetricsRegistry& reg) const;

  // Cold classification of an action name against the library's messaging
  // conventions; runs once per interned kind.
  static FlightClass classify_name(const std::string& name) {
    if (name == "SENDMSG") return FlightClass::kSend;
    if (name == "RECVMSG") return FlightClass::kRecv;
    if (name == "ESENDMSG") return FlightClass::kESend;
    if (name == "ERECVMSG") return FlightClass::kERecv;
    if (name == "TICK") return FlightClass::kTick;
    if (name == "MMTSTEP") return FlightClass::kMmtStep;
    return FlightClass::kOther;
  }

 private:
  static constexpr std::uint32_t kNoFlightKind = ~std::uint32_t{0};

  // One row per executor ActionKindId: everything the per-event fill needs,
  // so the hot path touches this table and nothing else. mkind is the
  // memoized message-kind string id (0 = not yet seen; rechecked against
  // the event's string on every use, so a kind that alternates message
  // kinds stays correct and merely re-interns).
  struct ExecMemo {
    std::uint32_t fk = kNoFlightKind;
    std::uint32_t mkind = 0;
    std::uint8_t cls = 0;
    std::uint8_t pad = 0;
    std::uint16_t step_id = 0;
  };

  struct KindEntry {
    std::uint32_t name_id = 0;
    std::int32_t node = kNoNode;
    std::int32_t peer = kNoNode;
    FlightClass cls = FlightClass::kOther;
    std::uint32_t mkind = 0;       // message-kind memo for the legacy path
    std::uint16_t step_id = 0;     // shared per action name
  };

  struct Shard {
    std::vector<FlightRecord> buf;
    std::uint64_t head = 0;  // total records ever written to this shard
  };

  // Assemble one record in its ring slot and feed the histograms. cls /
  // mkind_memo / step_id come from the caller's kind row (ExecMemo or
  // KindEntry).
  void fill(const TimedEvent& e, std::uint32_t fk, std::uint8_t cls,
            std::uint32_t* mkind_memo, std::uint16_t step_id) {
    Shard& sh = shards_[static_cast<std::uint32_t>(e.owner) & shard_mask_];
    FlightRecord& r = sh.buf[sh.head & ring_mask_];
    ++sh.head;
    // Value slots past nargs/nfields keep whatever bytes the evicted record
    // left; their tags are zeroed below (one 8-byte store covers both tag
    // arrays), and decoders must only trust tagged slots.
    std::memset(r.arg_tag, 0, sizeof r.arg_tag + sizeof r.field_tag);
    r.seq = seq_++;
    r.time = e.time;
    r.clock = e.clock;
    r.owner = e.owner;
    r.kind = fk;
    r.cls = cls;
    std::uint8_t flags = e.visible ? FlightRecord::kVisible : 0;
    const std::vector<Value>& args = e.action.args;
    std::size_t na = args.size();
    if (na > FlightRecord::kSlots) {
      flags |= FlightRecord::kOverflow;
      na = FlightRecord::kSlots;
    }
    r.nargs = static_cast<std::uint8_t>(na);
    for (std::size_t i = 0; i < na; ++i) {
      encode_value(args[i], &r.arg_tag[i], &r.arg[i]);
    }
    if (e.action.msg.has_value()) {
      const Message& m = *e.action.msg;
      flags |= FlightRecord::kHasMsg;
      r.uid = m.uid;
      r.tag = m.clock_tag;
      r.mkind = msg_kind_id(mkind_memo, m.kind);
      std::size_t nf = m.fields.size();
      if (nf > FlightRecord::kSlots) {
        flags |= FlightRecord::kOverflow;
        nf = FlightRecord::kSlots;
      }
      r.nfields = static_cast<std::uint8_t>(nf);
      for (std::size_t i = 0; i < nf; ++i) {
        encode_value(m.fields[i], &r.field_tag[i], &r.field[i]);
      }
    } else {
      r.uid = 0;
      r.tag = kNoClockTag;
      r.mkind = 0;
      r.nfields = 0;
    }
    r.flags = flags;
    if (opts_.histograms) observe_latencies(e, cls, step_id, r);
  }

  // Interning slow paths. Inline like the rest of the record path: the
  // executor (psc_runtime, which cannot link psc_obs) reaches them on a
  // kind's first occurrence.
  //
  // Executor-id path: ActionKindId already dedups (name, node, peer) per
  // run, so there is no hash-map probe here — at million-machine scale a
  // run interns one kind per few events (kinds are per node/peer) and the
  // (name, node, peer) map was the single largest record-path cost. The
  // entry is built straight from the event and memoized by executor id.
  // Rebinding the recorder to a new executor may therefore append duplicate
  // (name, node, peer) rows to the kind table; records keep referencing
  // their original row and step histograms are shared per name, so decode,
  // metrics, and aggregation across binds are unaffected.
  ExecMemo* intern_exec_kind(const TimedEvent& e) {
    const Action& a = e.action;
    const NameRef nr = name_ref(a.name);
    KindEntry k;
    k.name_id = nr.id;
    k.node = a.node;
    k.peer = a.peer;
    k.cls = nr.cls;
    k.step_id = nr.step_id;
    const auto fk = static_cast<std::uint32_t>(kinds_.size());
    kinds_.push_back(k);
    const auto kid = static_cast<std::size_t>(e.kind);
    if (kid >= exec_memo_.size()) exec_memo_.resize(kid + 1);
    ExecMemo& m = exec_memo_[kid];
    m.fk = fk;
    m.mkind = 0;
    m.cls = static_cast<std::uint8_t>(nr.cls);
    m.step_id = nr.step_id;
    return &m;
  }

  // Legacy-loop / hand-built events carry no executor kind id, so dedup
  // falls back to the (name, node, peer) map.
  std::uint32_t intern_legacy_kind(const TimedEvent& e) {
    const Action& a = e.action;
    const auto it = kind_ids_.find(ActionKindView{a.name, a.node, a.peer});
    if (it != kind_ids_.end()) return it->second;
    const NameRef nr = name_ref(a.name);
    KindEntry k;
    k.name_id = nr.id;
    k.node = a.node;
    k.peer = a.peer;
    k.cls = nr.cls;
    k.step_id = nr.step_id;
    const auto fk = static_cast<std::uint32_t>(kinds_.size());
    kinds_.push_back(k);
    kind_ids_.emplace(ActionKindKey{a.name, a.node, a.peer}, fk);
    return fk;
  }

  // Per-name intern state (string id, class, shared step histogram),
  // fronted by a small direct-mapped cache: workloads use a handful of
  // action names but intern thousands of (name, node, peer) kinds, and two
  // hash-map probes per intern is exactly the cost intern_exec_kind exists
  // to avoid. Collisions simply retake the slow path.
  struct NameRef {
    std::uint32_t id = 0;  // 0 = cache slot empty (id 0 is the reserved "")
    FlightClass cls = FlightClass::kOther;
    std::uint16_t step_id = 0;
  };

  NameRef name_ref(const std::string& name) {
    const std::size_t h =
        (name.size() * 7 +
         (name.empty() ? 0u : static_cast<unsigned char>(name.front()))) &
        (name_cache_.size() - 1);
    NameRef& c = name_cache_[h];
    if (c.id != 0 && strings_[c.id] == name) return c;
    NameRef r;
    r.id = intern_string(name);
    r.cls = classify_name(name);
    const auto [it, fresh] = step_by_name_.try_emplace(r.id, std::uint16_t{0});
    if (fresh) {
      it->second = static_cast<std::uint16_t>(steps_.size());
      steps_.push_back(std::make_unique<LogHistogram>());
    }
    r.step_id = it->second;
    if (r.id != 0) c = r;
    return r;
  }

  std::uint32_t intern_string(std::string_view s) {
    const auto it = string_ids_.find(std::string(s));
    if (it != string_ids_.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(strings_.size());
    strings_.emplace_back(s);
    string_ids_.emplace(strings_.back(), id);
    return id;
  }

  std::uint32_t msg_kind_id(std::uint32_t* memo, const std::string& kind) {
    if (*memo != 0 && strings_[*memo] == kind) return *memo;
    const std::uint32_t id = intern_string(kind);
    *memo = id;
    return id;
  }

  void encode_value(const Value& v, std::uint8_t* tag, std::int64_t* slot) {
    switch (v.index()) {
      case 1:
        *tag = FlightRecord::kInt;
        *slot = std::get<std::int64_t>(v);
        return;
      case 2:
        *tag = FlightRecord::kDouble;
        *slot = std::bit_cast<std::int64_t>(std::get<double>(v));
        return;
      case 3:
        *tag = FlightRecord::kString;
        *slot = static_cast<std::int64_t>(intern_string(std::get<std::string>(v)));
        return;
      default:
        *tag = FlightRecord::kNone;
        *slot = 0;
        return;
    }
  }

  void observe_latencies(const TimedEvent& e, std::uint8_t cls,
                         std::uint16_t step_id, const FlightRecord& r) {
    if (e.owner >= 0) {
      const auto o = static_cast<std::size_t>(e.owner);
      if (o >= last_time_.size()) last_time_.resize(o + 1, Time{-1});
      const Time last = last_time_[o];
      last_time_[o] = e.time;
      if (last >= 0) steps_[step_id]->add(e.time - last);
    }
    if ((r.flags & FlightRecord::kHasMsg) == 0) return;
    Time t;
    switch (static_cast<FlightClass>(cls)) {
      case FlightClass::kSend:
      case FlightClass::kESend:
        sent_.put(r.uid, e.time);
        break;
      case FlightClass::kERecv:
        if (sent_.take(r.uid, &t)) chan_.add(e.time - t);
        arrived_.put(r.uid, e.time);
        break;
      case FlightClass::kRecv:
        if (arrived_.take(r.uid, &t)) {
          hold_.add(e.time - t);
        } else if (sent_.take(r.uid, &t)) {
          chan_.add(e.time - t);
        }
        break;
      default:
        break;
    }
  }

  FlightOptions opts_;
  std::size_t ring_cap_ = 0;
  std::uint64_t ring_mask_ = 0;
  std::uint32_t shard_mask_ = 0;
  std::vector<Shard> shards_;
  std::uint64_t seq_ = 0;

  // Kind/string intern tables. exec_memo_ maps the bound executor's
  // ActionKindId to a recorder kind id for O(1) hot lookups; kind_ids_ is
  // the (name, node, peer) fallback for legacy-loop / hand-built events.
  std::uint64_t bound_uid_ = 0;
  std::vector<ExecMemo> exec_memo_;
  std::unordered_map<ActionKindKey, std::uint32_t, ActionKindHash, ActionKindEq>
      kind_ids_;
  std::vector<KindEntry> kinds_;
  std::vector<std::string> strings_;
  std::unordered_map<std::string, std::uint32_t> string_ids_;
  std::array<NameRef, 16> name_cache_{};

  // Online latency state.
  LogHistogram chan_;
  LogHistogram hold_;
  std::vector<std::unique_ptr<LogHistogram>> steps_;  // step_id -> histogram
  std::unordered_map<std::uint32_t, std::uint16_t>
      step_by_name_;                // name string id -> step_id
  std::vector<Time> last_time_;     // owner -> previous event time (-1 none)
  UidTimeMap sent_;                 // uid -> SENDMSG/ESENDMSG time
  UidTimeMap arrived_;              // uid -> ERECVMSG time (Simulation 1)
};

}  // namespace psc
