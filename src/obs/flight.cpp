#include "obs/flight.hpp"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>

#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace psc {
namespace {

// File layout (all integers little-endian; written on the little-endian
// targets this library supports and validated structurally on read):
//   byte[8]  magic "PSCFLT01" (the trailing "01" is the format version)
//   u32      sizeof(FlightRecord) — readers reject layout drift
//   u32      reserved (0)
//   u64      total_recorded, dropped, n_strings, n_kinds, n_records
//   strings  n_strings x (u32 length + raw bytes)
//   kinds    n_kinds x (u32 name_id, i32 node, i32 peer, u8 class, byte[3])
//   records  n_records x raw FlightRecord
constexpr char kMagic[8] = {'P', 'S', 'C', 'F', 'L', 'T', '0', '1'};

template <typename T>
void put_raw(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T get_raw(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  PSC_CHECK(is.good(), "flight snapshot: truncated input");
  return v;
}

Value decode_value(const FlightSnapshot& snap, std::uint8_t tag,
                   std::int64_t slot) {
  switch (tag) {
    case FlightRecord::kInt:
      return Value{slot};
    case FlightRecord::kDouble:
      return Value{std::bit_cast<double>(slot)};
    case FlightRecord::kString: {
      const auto id = static_cast<std::uint64_t>(slot);
      PSC_CHECK(id < snap.strings.size(),
                "flight snapshot: string id " << id << " out of range");
      return Value{snap.strings[static_cast<std::size_t>(id)]};
    }
    default:
      return Value{};
  }
}

}  // namespace

FlightSnapshot FlightRecorder::snapshot() const {
  FlightSnapshot snap;
  snap.total_recorded = total_recorded();
  snap.dropped = dropped();
  snap.strings = strings_;
  snap.kinds.reserve(kinds_.size());
  for (const KindEntry& k : kinds_) {
    snap.kinds.push_back(FlightSnapshot::Kind{k.name_id, k.node, k.peer, k.cls});
  }
  snap.records.reserve(static_cast<std::size_t>(retained()));
  for (const Shard& s : shards_) {
    const std::uint64_t n = std::min<std::uint64_t>(s.head, ring_cap_);
    for (std::uint64_t i = s.head - n; i < s.head; ++i) {
      snap.records.push_back(s.buf[i & ring_mask_]);
    }
  }
  std::sort(snap.records.begin(), snap.records.end(),
            [](const FlightRecord& a, const FlightRecord& b) {
              return a.seq < b.seq;
            });
  return snap;
}

bool FlightRecorder::dump(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  write_snapshot(os, snapshot());
  return os.good();
}

void FlightRecorder::export_metrics(MetricsRegistry& reg) const {
  reg.gauge("flight.recorded").set(static_cast<double>(total_recorded()));
  reg.gauge("flight.dropped").set(static_cast<double>(dropped()));
  const auto put = [&reg](const std::string& prefix, const LogHistogram& h) {
    if (h.count() == 0) return;
    reg.gauge(prefix + ".count").set(static_cast<double>(h.count()));
    reg.gauge(prefix + ".p50_ns").set(static_cast<double>(h.p50()));
    reg.gauge(prefix + ".p99_ns").set(static_cast<double>(h.p99()));
    reg.gauge(prefix + ".p999_ns").set(static_cast<double>(h.p999()));
    reg.gauge(prefix + ".max_ns").set(static_cast<double>(h.max()));
  };
  put("flight.channel", chan_);
  put("flight.hold", hold_);
  for (const std::string& name : step_names()) {
    put("flight.step." + name, *step_hist(name));
  }
}

void write_snapshot(std::ostream& os, const FlightSnapshot& snap) {
  os.write(kMagic, sizeof(kMagic));
  put_raw(os, static_cast<std::uint32_t>(sizeof(FlightRecord)));
  put_raw(os, std::uint32_t{0});
  put_raw(os, snap.total_recorded);
  put_raw(os, snap.dropped);
  put_raw(os, static_cast<std::uint64_t>(snap.strings.size()));
  put_raw(os, static_cast<std::uint64_t>(snap.kinds.size()));
  put_raw(os, static_cast<std::uint64_t>(snap.records.size()));
  for (const std::string& s : snap.strings) {
    put_raw(os, static_cast<std::uint32_t>(s.size()));
    os.write(s.data(), static_cast<std::streamsize>(s.size()));
  }
  for (const FlightSnapshot::Kind& k : snap.kinds) {
    put_raw(os, k.name_id);
    put_raw(os, k.node);
    put_raw(os, k.peer);
    put_raw(os, static_cast<std::uint8_t>(k.cls));
    const char pad[3] = {0, 0, 0};
    os.write(pad, 3);
  }
  os.write(reinterpret_cast<const char*>(snap.records.data()),
           static_cast<std::streamsize>(snap.records.size() *
                                        sizeof(FlightRecord)));
}

FlightSnapshot read_snapshot(std::istream& is) {
  char magic[8] = {};
  is.read(magic, sizeof(magic));
  PSC_CHECK(is.good() && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
            "flight snapshot: bad magic (not a PSCFLT01 file)");
  const auto record_size = get_raw<std::uint32_t>(is);
  PSC_CHECK(record_size == sizeof(FlightRecord),
            "flight snapshot: record size " << record_size << " != "
                                            << sizeof(FlightRecord)
                                            << " (format drift)");
  get_raw<std::uint32_t>(is);  // reserved
  FlightSnapshot snap;
  snap.total_recorded = get_raw<std::uint64_t>(is);
  snap.dropped = get_raw<std::uint64_t>(is);
  const auto n_strings = get_raw<std::uint64_t>(is);
  const auto n_kinds = get_raw<std::uint64_t>(is);
  const auto n_records = get_raw<std::uint64_t>(is);
  constexpr std::uint64_t kSane = std::uint64_t{1} << 32;
  PSC_CHECK(n_strings < kSane && n_kinds < kSane && n_records < kSane,
            "flight snapshot: implausible table sizes");
  snap.strings.reserve(static_cast<std::size_t>(n_strings));
  for (std::uint64_t i = 0; i < n_strings; ++i) {
    const auto len = get_raw<std::uint32_t>(is);
    std::string s(len, '\0');
    is.read(s.data(), len);
    PSC_CHECK(is.good(), "flight snapshot: truncated string table");
    snap.strings.push_back(std::move(s));
  }
  snap.kinds.reserve(static_cast<std::size_t>(n_kinds));
  for (std::uint64_t i = 0; i < n_kinds; ++i) {
    FlightSnapshot::Kind k;
    k.name_id = get_raw<std::uint32_t>(is);
    PSC_CHECK(k.name_id < snap.strings.size(),
              "flight snapshot: kind name id out of range");
    k.node = get_raw<std::int32_t>(is);
    k.peer = get_raw<std::int32_t>(is);
    k.cls = static_cast<FlightClass>(get_raw<std::uint8_t>(is));
    char pad[3];
    is.read(pad, 3);
    snap.kinds.push_back(k);
  }
  snap.records.resize(static_cast<std::size_t>(n_records));
  is.read(reinterpret_cast<char*>(snap.records.data()),
          static_cast<std::streamsize>(n_records * sizeof(FlightRecord)));
  PSC_CHECK(is.good(), "flight snapshot: truncated record section");
  return snap;
}

TimedTrace decode_snapshot(const FlightSnapshot& snap) {
  TimedTrace out;
  out.reserve(snap.records.size());
  for (const FlightRecord& r : snap.records) {
    PSC_CHECK(r.kind < snap.kinds.size(),
              "flight snapshot: record kind " << r.kind << " out of range");
    const FlightSnapshot::Kind& k = snap.kinds[r.kind];
    TimedEvent e;
    e.time = r.time;
    e.clock = r.clock;
    e.owner = r.owner;
    e.visible = (r.flags & FlightRecord::kVisible) != 0;
    e.action.name = snap.strings[k.name_id];
    e.action.node = k.node;
    e.action.peer = k.peer;
    e.action.args.reserve(r.nargs);
    for (std::size_t i = 0; i < r.nargs; ++i) {
      e.action.args.push_back(decode_value(snap, r.arg_tag[i], r.arg[i]));
    }
    if ((r.flags & FlightRecord::kHasMsg) != 0) {
      Message m;
      PSC_CHECK(r.mkind < snap.strings.size(),
                "flight snapshot: message kind id out of range");
      m.kind = snap.strings[r.mkind];
      m.uid = r.uid;
      m.clock_tag = r.tag;
      m.fields.reserve(r.nfields);
      for (std::size_t i = 0; i < r.nfields; ++i) {
        m.fields.push_back(decode_value(snap, r.field_tag[i], r.field[i]));
      }
      e.action.msg = std::move(m);
    }
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace psc
