#include "obs/observatory.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "core/machine.hpp"
#include "obs/probes.hpp"
#include "util/check.hpp"

namespace psc {

// --- TimeSeries -------------------------------------------------------------

TimeSeries::TimeSeries(const MetricsRegistry& reg, TimeSeriesOptions opts)
    : reg_(reg), opts_(opts) {
  PSC_CHECK(opts_.cadence > 0, "time-series cadence must be positive");
  PSC_CHECK(opts_.window > 0, "time-series window must be positive");
}

void TimeSeries::record(const std::string& name, Time t, double v) {
  auto [it, fresh] = series_.try_emplace(name);
  if (fresh) order_.push_back(name);
  Ring& r = it->second;
  if (r.buf.size() < opts_.window) {
    r.buf.push_back({t, v});
    return;
  }
  r.buf[r.next] = {t, v};
  r.next = (r.next + 1) % r.buf.size();
  ++r.dropped;
}

void TimeSeries::sample(Time now) {
  ++samples_;
  for (MetricId id = 0; id < reg_.size(); ++id) {
    const std::string& name = reg_.name(id);
    if (const Counter* c = reg_.find_counter(name)) {
      record(name, now, static_cast<double>(c->value()));
    } else if (const Gauge* g = reg_.find_gauge(name)) {
      record(name, now, g->last());
    } else if (const Histogram* h = reg_.find_histogram(name)) {
      record(name + ".count", now, static_cast<double>(h->count()));
      record(name + ".p50", now, h->p50());
      record(name + ".p99", now, h->p99());
    }
  }
}

std::vector<TimeSeries::Point> TimeSeries::points(
    std::string_view series) const {
  const auto it = series_.find(std::string(series));
  if (it == series_.end()) return {};
  const Ring& r = it->second;
  std::vector<Point> out;
  out.reserve(r.buf.size());
  // Oldest first: once the ring is full, `next` is the oldest slot.
  for (std::size_t k = 0; k < r.buf.size(); ++k) {
    out.push_back(r.buf[(r.next + k) % r.buf.size()]);
  }
  return out;
}

std::uint64_t TimeSeries::dropped(std::string_view series) const {
  const auto it = series_.find(std::string(series));
  return it == series_.end() ? 0 : it->second.dropped;
}

void TimeSeries::write_jsonl(std::ostream& os) const {
  for (const std::string& name : order_) {
    const auto it = series_.find(name);
    const Ring& r = it->second;
    os << "{\"type\":\"timeseries\",\"name\":\"" << json_escape(name)
       << "\",\"cadence_ns\":" << opts_.cadence
       << ",\"dropped\":" << r.dropped << ",\"points\":[";
    bool first = true;
    for (const Point& p : points(name)) {
      if (!first) os << ",";
      first = false;
      os << "[" << p.t << ",";
      if (std::isfinite(p.v)) {
        os << p.v;
      } else {
        os << "null";
      }
      os << "]";
    }
    os << "]}\n";
  }
}

void TimeSeriesProbe::on_run_begin(Time now) {
  ts_.sample(now);
  next_ = now + ts_.options().cadence;
}

void TimeSeriesProbe::on_time_advance(Time /*from*/, Time to) {
  // State only changes at events, so a sample stamped at the period
  // boundary is exact even though it is taken after the jump past it.
  while (next_ <= to) {
    ts_.sample(next_);
    next_ += ts_.options().cadence;
  }
}

void TimeSeriesProbe::on_run_end(Time now) { ts_.sample(now); }

// --- BoundSlackProbe --------------------------------------------------------

std::vector<double> slack_bounds() {
  const std::vector<double> pos = duration_bounds();
  std::vector<double> out;
  out.reserve(2 * pos.size() + 1);
  for (auto it = pos.rbegin(); it != pos.rend(); ++it) out.push_back(-*it);
  out.push_back(0.0);
  out.insert(out.end(), pos.begin(), pos.end());
  return out;
}

BoundSlackProbe::BoundSlackProbe(MetricsRegistry& reg, SlackOptions opts)
    : reg_(reg), opts_(opts) {
  if (opts_.eps >= 0) {
    ceps_ = ceps_window(opts_.eps, opts_.ell);
    ceps_hist_ = &reg_.histogram("slack.ceps_ns", slack_bounds());
  }
  if (opts_.d2 >= 0) {
    delivery_ = delivery_window(opts_.d1, opts_.d2);
    delivery_hist_ = &reg_.histogram("slack.delivery_ns", slack_bounds());
    if (opts_.eps >= 0) {
      thm47_ = thm47_window(opts_.d1, opts_.d2, opts_.eps);
      thm47_hist_ = &reg_.histogram("slack.thm47_ns", slack_bounds());
    }
  }
  if (opts_.ell >= 0) {
    mmt_ = mmt_window(opts_.ell);
    mmt_hist_ = &reg_.histogram("slack.mmt_ns", slack_bounds());
  }
  violations_ = &reg_.counter("slack.violations");
}

Duration BoundSlackProbe::min_slack() const {
  return std::min(std::min(min_ceps_, min_delivery_),
                  std::min(min_thm47_, min_mmt_));
}

void BoundSlackProbe::feed(Histogram* hist, Duration* min_seen,
                           Duration slack) {
  hist->add(static_cast<double>(slack));
  if (slack < *min_seen) *min_seen = slack;
  if (slack < 0) violations_->add();
}

Gauge* BoundSlackProbe::node_gauge(std::unordered_map<int, Gauge*>& cache,
                                   const char* prefix, int node) {
  auto [it, fresh] = cache.try_emplace(node, nullptr);
  if (fresh) {
    it->second =
        &reg_.gauge(std::string(prefix) + ".node" + std::to_string(node));
  }
  return it->second;
}

Gauge* BoundSlackProbe::channel_gauge(const Machine& owner) {
  auto [it, fresh] = channel_gauges_.try_emplace(&owner, nullptr);
  if (fresh) {
    it->second = &reg_.gauge("slack.delivery_ns." + owner.name());
  }
  return it->second;
}

void BoundSlackProbe::on_event(const TimedEvent& e, const Machine& owner) {
  if (ceps_hist_) feed_ceps(e);
  if (delivery_hist_) feed_channel(e, owner);
  if (mmt_hist_) feed_mmt(e);
}

void BoundSlackProbe::feed_ceps(const TimedEvent& e) {
  // PSC101's quantity: the signed skew c(t) - t must sit in the C_eps band
  // (widened by ell under MMT, where the visible clock is the last tick).
  if (e.clock == kNoClockTag) return;
  const Duration slack = ceps_.slack(e.clock - e.time);
  feed(ceps_hist_, &min_ceps_, slack);
  if (opts_.per_node && e.action.node != kNoNode) {
    node_gauge(ceps_gauges_, "slack.ceps_ns", e.action.node)
        ->set(static_cast<double>(slack));
  }
}

void BoundSlackProbe::feed_channel(const TimedEvent& e, const Machine& owner) {
  const Action& a = e.action;
  if (!a.msg.has_value()) return;
  const std::uint64_t uid = a.msg->uid;
  const std::string& nm = a.name;

  // Same (length, lead byte) pre-dispatch as TraceChecker::check_channel:
  // the probe runs on every message event and is held to the <5% ns/event
  // overhead budget (bench_executor's PSC_OBS arm).
  if (nm.size() == 7) {
    if (nm[0] == 'S' && nm == "SENDMSG") {
      msgs_[uid].send_time = e.time;
    } else if (nm[0] == 'R' && nm == "RECVMSG") {
      feed_recv(e, owner, uid);
    }
    return;
  }
  if (nm.size() != 8 || nm[0] != 'E') return;

  if (nm[1] == 'S' && nm == "ESENDMSG") {
    MsgRecord& r = msgs_[uid];
    r.esend_time = e.time;
    if (a.msg->clock_tag != kNoClockTag) r.tag = a.msg->clock_tag;
    return;
  }

  if (nm[1] == 'R' && nm == "ERECVMSG") {
    MsgRecord* rec = msgs_.find(uid);
    if (rec == nullptr || rec->esend_time < 0) return;
    if (a.msg->clock_tag != kNoClockTag) rec->tag = a.msg->clock_tag;
    // Simulation 1 physical delivery: latency slack against [d1, d2].
    const Duration slack = delivery_.slack(e.time - rec->esend_time);
    feed(delivery_hist_, &min_delivery_, slack);
    if (opts_.per_channel) {
      channel_gauge(owner)->set(static_cast<double>(slack));
    }
  }
}

void BoundSlackProbe::feed_recv(const TimedEvent& e, const Machine& owner,
                                std::uint64_t uid) {
  const Action& a = e.action;
  const MsgRecord* rec = msgs_.find(uid);
  if (rec == nullptr) return;
  const MsgRecord& r = *rec;
  if (r.esend_time < 0) {
    // Timed model: RECVMSG is the physical delivery.
    if (r.send_time < 0) return;
    const Duration slack = delivery_.slack(e.time - r.send_time);
    feed(delivery_hist_, &min_delivery_, slack);
    if (opts_.per_channel) {
      channel_gauge(owner)->set(static_cast<double>(slack));
    }
    return;
  }
  // Simulation 1 buffer release: Theorem 4.7's clock-time latency window.
  if (thm47_hist_ && r.tag != kNoClockTag && e.clock != kNoClockTag) {
    const Duration slack = thm47_.slack(e.clock - r.tag);
    feed(thm47_hist_, &min_thm47_, slack);
    if (opts_.per_node && a.node != kNoNode) {
      node_gauge(thm47_gauges_, "slack.thm47_ns", a.node)
          ->set(static_cast<double>(slack));
    }
  }
}

void BoundSlackProbe::feed_mmt(const TimedEvent& e) {
  // Boundmap slack is one-sided: [0, ell]'s lower edge is trivially
  // satisfied by any gap (a *small* gap is eagerness, not tightness), so
  // only the distance to the deadline ell counts.
  if (e.action.name == "TICK" && e.action.node != kNoNode) {
    const auto it = last_tick_.find(e.action.node);
    const Time prev = it == last_tick_.end() ? 0 : it->second;
    const Duration slack = mmt_.hi - (e.time - prev);
    feed(mmt_hist_, &min_mmt_, slack);
    if (opts_.per_node) {
      node_gauge(mmt_gauges_, "slack.mmt_ns", e.action.node)
          ->set(static_cast<double>(slack));
    }
    last_tick_[e.action.node] = e.time;
  }
  if (e.owner >= 0) {
    if (e.action.name == "MMTSTEP") mmt_owners_.insert(e.owner);
    if (mmt_owners_.count(e.owner) != 0) {
      const auto it = last_local_.find(e.owner);
      const Time prev = it == last_local_.end() ? 0 : it->second;
      feed(mmt_hist_, &min_mmt_, mmt_.hi - (e.time - prev));
    }
    last_local_[e.owner] = e.time;
  }
}

}  // namespace psc
