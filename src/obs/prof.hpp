// Sampling microprofiler for the executor hot loop (docs/OBSERVABILITY.md,
// "Microprofiler").
//
// PR 8 could only price the flight recorder *indirectly*: run the bench
// twice, once with the recorder attached and once without, and call the
// ns/event delta its cost. That works for one feature at a time and only
// down to the bench noise floor (~2%); it says nothing about where the
// *baseline* nanoseconds go (wheel advance? dirty re-poll? routing?). The
// microprofiler answers that directly: the scheduler loop brackets each
// hot-loop phase — wheel/heap advance, candidate poll, pick, routing,
// machine step, trace record, probe dispatch, online lint, flight record —
// with cycle-counter reads and accumulates per-phase totals, plus
// per-action-kind and per-machine-kind attribution of the step phase
// (reusing the interned TimedEvent::kind ids from PR 7, memoized here the
// same way FlightRecorder memoizes them).
//
// Timer cost is real (two rdtsc reads per phase, ~6 phases per event), so
// full instrumentation of every iteration would itself be a ~40-75% "arm".
// Instead the profiler samples whole loop iterations 1-in-N (default 64,
// with a deterministic jittered gap so the stride cannot alias with the
// wheel's power-of-two slot periodicity — see next_gap): an unsampled
// iteration pays exactly one decrement-and-test, a sampled one is timed end
// to end, and totals are scaled by the measured sampling ratio at report
// time. Phase ticks are converted to nanoseconds by calibrating
// the tick clock against steady_clock across the whole run (run_begin/
// run_end capture both), so reports are in ns regardless of the TSC rate.
//
// Two systematic errors are corrected before the scale-up:
//
//   1. Timer self-cost. The timer cost sampled iterations *do* pay lands
//      inside their phase spans, and the report-time sampling scale
//      multiplies it by N — left uncorrected, phase sums systematically
//      exceed the measured wall (+10% at bench scale, worse on short
//      loops). The constructor calibrates the cost of one bracket (a
//      ticks() read plus the add() bookkeeping) by running the exact
//      bracket sequence back to back, and report() subtracts
//      hits * bracket_ticks() from every phase/kind/machine total.
//   2. Preemption amplification. rdtsc keeps counting while the thread is
//      scheduled out, so a stolen CPU slice landing inside a sampled span
//      is scaled by N at report time — one 1.5ms preemption in a 300ms
//      run misattributes ~30% of the wall (observed as phase-sum
//      conservation swinging 94%..131% between identical runs on a shared
//      box). Sampled iterations are therefore buffered and discarded when
//      their total span exceeds kMaxSampledIterTicks (far above any real
//      iteration, far below a scheduler slice), and conservation is
//      checked against *thread CPU time* (cpu_ns), which a preemption
//      never inflates, rather than wall time.
//
// bench_executor gates the default-sampling overhead under 10% of
// scheduler ns/event at >= 65,536 machines, checks the corrected phase
// sums cover 90-120% of the profiled run's thread CPU time, and
// cross-checks the direct record-path attribution against the flight
// recorder's A/B arm.
//
// Layering: psc_runtime cannot link psc_obs, so everything the executor
// calls per iteration/event (begin_iteration, add, add_kind, add_machine,
// count_event) is defined inline in this header — the same arrangement as
// obs/flight.hpp. The cold reporting half — ProfReport assembly,
// MetricsRegistry export, folded-stack/flamegraph and table rendering, the
// Chrome counter-track probe — lives in prof.cpp inside psc_obs.
//
// Wiring: construct a Profiler, hand it to ExecutorOptions::profile or
// Executor::attach_profiler (RunObserver::attach does the latter from
// ObsOptions::profile), run, then report()/export_metrics(). One profiler
// may observe several executors in sequence (bench repeats aggregate into
// one): bind() drops the per-executor kind/machine memos while the
// profiler's own slot tables keep accumulating.
#pragma once

#include <chrono>
#include <cstdint>
#include <ctime>
#include <iosfwd>
#include <string>
#include <string_view>
#include <typeinfo>
#include <unordered_map>
#include <vector>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif
#if defined(__GNUG__)
#include <cstdlib>
#include <cxxabi.h>
#endif

#include "core/trace.hpp"
#include "obs/probe.hpp"

namespace psc {

class MetricsRegistry;
class ChromeTraceWriter;

// The hot-loop phases the scheduler brackets. One iteration of the event
// loop is either an event (kPoll + kPick + kRoute + kStep + the record
// phases) or a time advance (kPoll + kAdvance); the phase totals therefore
// partition the loop's wall time up to the unbracketed loop framing.
enum class ProfPhase : std::uint8_t {
  kAdvance = 0,  // advance_time_wheel / _sched / legacy scan
  kPoll,         // flush_dirty (candidate re-poll) / legacy gather_enabled
  kPick,         // adversary RNG draw + locate_candidate
  kRoute,        // kind memo/intern/resolve + claimant role validation
  kStep,         // apply_local + dirty marking + subscriber/classify fanout
  kRecord,       // TimedEvent scalar fill + record_events push_back
  kProbe,        // on_event dispatch to non-lint probes
  kLint,         // on_event dispatch to the online invariant checker
  kFlight,       // FlightRecorder::record
  kCount_,
};

inline constexpr std::size_t kProfPhaseCount =
    static_cast<std::size_t>(ProfPhase::kCount_);

inline constexpr const char* kProfPhaseNames[kProfPhaseCount] = {
    "advance", "poll", "pick", "route", "step",
    "record",  "probe", "lint", "flight",
};

struct ProfOptions {
  // Time 1 out of every N loop iterations (N = 1 instruments everything).
  // The default keeps the two-rdtsc-per-phase timer cost near 1/64th of its
  // exhaustive price, which is what holds the bench overhead gate.
  std::uint32_t sample_every = 64;
};

// One attribution row of a ProfReport: a phase, an action kind, or a
// machine type. `ns` is already scaled to estimated whole-run nanoseconds
// (ticks * calibrated ns/tick * sampling ratio); `count` is the raw number
// of sampled hits (phases) or sampled events (kinds/machines).
struct ProfEntry {
  std::string name;
  std::uint64_t count = 0;
  double ns = 0;
};

// Cold, copyable snapshot assembled by Profiler::report().
struct ProfReport {
  std::uint32_t sample_every = 1;
  double sample_scale = 1.0;  // iterations / sampled_iterations (0-guarded)
  std::uint64_t iterations = 0;
  std::uint64_t sampled_iterations = 0;
  // Sampled iterations discarded because a preemption-sized stall landed
  // inside their span (see kMaxSampledIterTicks); not in the counts above.
  std::uint64_t rejected_iterations = 0;
  std::uint64_t events = 0;  // exact — counted on every event, sampled or not
  double wall_ns = 0;        // run_begin -> run_end, summed over runs
  // Thread CPU time over the same spans: the conservation denominator
  // (wall minus whatever the OS scheduled us out for). Falls back to wall
  // where no thread CPU clock exists.
  double cpu_ns = 0;
  double ns_per_tick = 0;    // calibrated; 0 when no time passed
  // Calibrated self-cost of one phase bracket in ticks; every entry below
  // already has hits * bracket_ticks subtracted (clamped at zero).
  double bracket_ticks = 0;
  std::vector<ProfEntry> phases;    // index = ProfPhase, always kProfPhaseCount
  std::vector<ProfEntry> kinds;     // step time per action kind, ns-descending
  std::vector<ProfEntry> machines;  // step time per machine type, ns-descending

  double phase_total_ns() const {
    double total = 0;
    for (const ProfEntry& e : phases) total += e.ns;
    return total;
  }
  // Estimated ns/event of one phase over the profiled run (0 on no events).
  double phase_ns_per_event(ProfPhase ph) const {
    if (events == 0) return 0.0;
    return phases[static_cast<std::size_t>(ph)].ns /
           static_cast<double>(events);
  }
};

class Profiler {
 public:
  explicit Profiler(ProfOptions opts = {}) : opts_(opts) {
    if (opts_.sample_every == 0) opts_.sample_every = 1;
    countdown_ = opts_.sample_every;
    bracket_ticks_ = calibrate_bracket_ticks();
  }

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  const ProfOptions& options() const { return opts_; }

  // Raw cycle counter: rdtsc where available, steady_clock ns elsewhere.
  // Unserialized on purpose — phase spans are hundreds of instructions, so
  // out-of-order skew is noise, and a fence would cost more than it fixes.
  static std::uint64_t ticks() {
#if defined(__x86_64__) || defined(_M_X64)
    return __rdtsc();
#else
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
#endif
  }

  // Self-cost of one phase bracket (a ticks() read plus the accumulate in
  // add()), measured by running the exact bracket sequence back to back
  // with no work between brackets. Min-of-batches rejects batches a timer
  // interrupt landed in, biasing the estimate low — under-subtracting
  // leaves a little timer cost in the phases (conservation reads slightly
  // high), over-subtracting would invent idle time that belongs to nobody.
  static double calibrate_bracket_ticks() {
    constexpr int kBatches = 16;
    constexpr int kPerBatch = 2048;
    volatile std::uint64_t acc = 0;  // stand-in for add()'s accumulate
    double best = -1.0;
    for (int b = 0; b < kBatches; ++b) {
      std::uint64_t t0 = ticks();
      const std::uint64_t begin = t0;
      for (int i = 0; i < kPerBatch; ++i) {
        const std::uint64_t t1 = ticks();
        acc = acc + (t1 - t0);
        t0 = t1;
      }
      const double mean = static_cast<double>(t0 - begin) / kPerBatch;
      if (best < 0 || mean < best) best = mean;
    }
    return best < 0 ? 0.0 : best;
  }

  // Associates the profiler with one executor instance. Kind ids and
  // machine indices are dense *per executor*, so the memo arrays mapping
  // them to profiler slots reset when the executor changes — the slot
  // tables themselves (keyed by name) keep aggregating across runs. Same
  // contract as FlightRecorder::bind.
  void bind(std::uint64_t exec_uid) {
    if (exec_uid == bound_uid_) return;
    bound_uid_ = exec_uid;
    kind_memo_.clear();
    machine_memo_.clear();
  }

  // Wall-clock + CPU-clock + tick bracketing of one run's loop, for tick
  // calibration (ticks vs steady: both count through preemption, so the
  // ratio is the true tick rate) and the conservation denominator (CPU
  // time: preemption-free by construction).
  void run_begin() {
    run_t0_ticks_ = ticks();
    run_t0_ns_ = steady_ns();
    run_t0_cpu_ = thread_cpu_ns();
  }
  void run_end() {
    finalize_pending();
    ticks_span_ += ticks() - run_t0_ticks_;
    wall_ns_ += static_cast<double>(steady_ns() - run_t0_ns_);
    cpu_ns_ += static_cast<double>(thread_cpu_ns() - run_t0_cpu_);
  }

  // Called at the top of every loop iteration; true when this iteration is
  // sampled (the caller then brackets its phases). The countdown starts at
  // sample_every, so the first sampled iteration is the N-th — iteration 0
  // carries the O(machines) startup flush, which scaled by N would swamp
  // the poll estimate. The previous sampled iteration's buffered spans are
  // committed (or rejected as preemption-torn) here, once its end is known.
  bool begin_iteration() {
    ++iterations_;
    if (pending_active_) finalize_pending();
    if (--countdown_ != 0) return false;
    countdown_ = next_gap();
    ++sampled_iterations_;
    pending_active_ = true;
    return true;
  }

  // Exact per-event count, maintained even on unsampled iterations: report
  // ratios divide by real events, not scaled estimates.
  void count_event() { ++events_; }

  void add(ProfPhase ph, std::uint64_t dticks) {
    const auto i = static_cast<std::size_t>(ph);
    pending_phase_ticks_[i] += dticks;
    ++pending_phase_hits_[i];
  }

  // Attributes a sampled step span to the event's interned kind. The
  // executor's kind ids are positional per executor; slots here are keyed
  // by action *name* (node/peer collapsed — a flood over 65k nodes has 65k
  // SEND kinds but one SEND row is what a profile wants).
  void add_kind(ActionKindId kid, const std::string& name,
                std::uint64_t dticks) {
    const auto k = static_cast<std::size_t>(kid);
    if (k >= kind_memo_.size()) kind_memo_.resize(k + 1, kNoSlot);
    std::uint32_t slot = kind_memo_[k];
    if (slot == kNoSlot) {
      slot = intern_slot(kind_slots_, kind_index_, name);
      kind_memo_[k] = slot;
    }
    pend_slot(pending_kinds_, pending_kind_n_, kind_slots_, slot, dticks);
  }

  // Same, for the legacy polling loop, which never interns kinds.
  void add_kind_by_name(const std::string& name, std::uint64_t dticks) {
    const std::uint32_t slot = intern_slot(kind_slots_, kind_index_, name);
    pend_slot(pending_kinds_, pending_kind_n_, kind_slots_, slot, dticks);
  }

  // Attributes a sampled step span to the owning machine's dynamic type.
  // The demangle runs once per machine index (cold), memoized like kinds.
  void add_machine(std::size_t machine, const std::type_info& type,
                   std::uint64_t dticks) {
    if (machine >= machine_memo_.size()) {
      machine_memo_.resize(machine + 1, kNoSlot);
    }
    std::uint32_t slot = machine_memo_[machine];
    if (slot == kNoSlot) {
      slot = intern_slot(machine_slots_, machine_index_, type_name(type));
      machine_memo_[machine] = slot;
    }
    pend_slot(pending_machines_, pending_machine_n_, machine_slots_, slot,
              dticks);
  }

  // --- introspection (tests, report assembly) ------------------------------

  std::uint64_t iterations() const { return iterations_; }
  std::uint64_t sampled_iterations() const { return sampled_iterations_; }
  std::uint64_t rejected_iterations() const { return rejected_iterations_; }
  std::uint64_t events() const { return events_; }
  double wall_ns() const { return wall_ns_; }
  double cpu_ns() const { return cpu_ns_; }
  double bracket_ticks() const { return bracket_ticks_; }
  std::uint64_t phase_ticks(ProfPhase ph) const {
    return phase_ticks_[static_cast<std::size_t>(ph)];
  }
  std::uint64_t phase_hits(ProfPhase ph) const {
    return phase_hits_[static_cast<std::size_t>(ph)];
  }
  // Sampled hits attributed to one kind/machine name (0 when never seen).
  std::uint64_t kind_count(std::string_view name) const {
    const auto it = kind_index_.find(std::string(name));
    return it == kind_index_.end() ? 0 : kind_slots_[it->second].count;
  }
  std::uint64_t machine_count(std::string_view name) const {
    const auto it = machine_index_.find(std::string(name));
    return it == machine_index_.end() ? 0 : machine_slots_[it->second].count;
  }
  // Sum of sampled hits across all kind (resp. machine) slots.
  std::uint64_t kind_count_total() const {
    std::uint64_t total = 0;
    for (const Slot& s : kind_slots_) total += s.count;
    return total;
  }
  std::uint64_t machine_count_total() const {
    std::uint64_t total = 0;
    for (const Slot& s : machine_slots_) total += s.count;
    return total;
  }

  // --- cold half (prof.cpp, psc_obs) ---------------------------------------

  // Scaled, ns-calibrated snapshot of everything accumulated so far.
  ProfReport report() const;
  // exec.prof.* gauges: sampling parameters, per-phase ns and share of
  // phase total, top kinds. All ratios 0-guarded for zero-event runs.
  void export_metrics(MetricsRegistry& registry) const;

 private:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  struct Slot {
    std::string name;
    std::uint64_t ticks = 0;
    std::uint64_t count = 0;
  };

  static std::uint64_t steady_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  // CPU time consumed by the calling thread — time the OS scheduled us out
  // for does not count, which is exactly what the conservation check needs
  // as its denominator. steady_clock fallback where the clock is missing.
  static std::uint64_t thread_cpu_ns() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
    timespec ts{};
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
      return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
             static_cast<std::uint64_t>(ts.tv_nsec);
    }
#endif
    return steady_ns();
  }

  // Ceiling on one sampled iteration's total span. A real iteration is at
  // most a few microseconds even at million-machine scale (a full wheel
  // cascade included); a CFS preemption slice is >= 1ms. 2^20 ticks
  // (~0.3-1ms across common TSC rates) sits between the two, so anything
  // above it is a stall the thread did not execute, which scaled by
  // sample_every would misattribute ~N times its length. Exhaustive mode
  // (N = 1) never rejects: there is no amplification to guard, and tests
  // pin its exact counts.
  static constexpr std::uint64_t kMaxSampledIterTicks = 1ull << 20;

  // Commits (or rejects) the buffered spans of the last sampled iteration,
  // once its full extent is known — called from the next begin_iteration
  // and from run_end, so the final iteration of a run is never dropped.
  void finalize_pending() {
    pending_active_ = false;
    std::uint64_t total = 0;
    for (std::uint64_t t : pending_phase_ticks_) total += t;
    const bool keep =
        opts_.sample_every <= 1 || total <= kMaxSampledIterTicks;
    if (keep) {
      for (std::size_t i = 0; i < kProfPhaseCount; ++i) {
        phase_ticks_[i] += pending_phase_ticks_[i];
        phase_hits_[i] += pending_phase_hits_[i];
      }
      for (int i = 0; i < pending_kind_n_; ++i) {
        kind_slots_[pending_kinds_[i].slot].ticks += pending_kinds_[i].ticks;
        kind_slots_[pending_kinds_[i].slot].count += pending_kinds_[i].count;
      }
      for (int i = 0; i < pending_machine_n_; ++i) {
        machine_slots_[pending_machines_[i].slot].ticks +=
            pending_machines_[i].ticks;
        machine_slots_[pending_machines_[i].slot].count +=
            pending_machines_[i].count;
      }
    } else {
      ++rejected_iterations_;
    }
    for (std::size_t i = 0; i < kProfPhaseCount; ++i) {
      pending_phase_ticks_[i] = 0;
      pending_phase_hits_[i] = 0;
    }
    pending_kind_n_ = 0;
    pending_machine_n_ = 0;
  }

  static std::uint32_t intern_slot(
      std::vector<Slot>& slots,
      std::unordered_map<std::string, std::uint32_t>& index,
      const std::string& name) {
    const auto it = index.find(name);
    if (it != index.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(slots.size());
    slots.push_back(Slot{name, 0, 0});
    index.emplace(name, id);
    return id;
  }

  // Demangled type name with the library namespace stripped; cold path,
  // runs once per (profiler, machine index).
  static std::string type_name(const std::type_info& type) {
    std::string out = type.name();
#if defined(__GNUG__)
    int status = 0;
    char* d = abi::__cxa_demangle(type.name(), nullptr, nullptr, &status);
    if (status == 0 && d != nullptr) out = d;
    std::free(d);
#endif
    constexpr std::string_view kNs = "psc::";
    if (out.compare(0, kNs.size(), kNs) == 0) out.erase(0, kNs.size());
    return out;
  }

  // Next sampling gap, uniform in [N/2, 3N/2) via a fixed-seed xorshift.
  // A constant 1-in-N stride at the default N=64 is a power of two, and so
  // is everything periodic in the executor (wheel slot widths, ring sizes,
  // flood fan-out) — a locked stride samples the same phase of the wheel's
  // cascade cycle for a whole run and biases the extrapolation by several
  // percent with the sign depending on the initial alignment (observed:
  // phase-sum conservation swinging 102% -> 114% between identical runs).
  // Drawn only on sampled iterations, so unsampled ones still pay exactly
  // one decrement-and-test; the fixed seed keeps runs reproducible, and
  // report() scales by the *measured* iterations/sampled ratio, so the
  // ~N-0.5 mean gap costs nothing in accuracy. N = 1 never jitters —
  // prof_test pins that exhaustive mode counts every iteration.
  std::uint32_t next_gap() {
    const std::uint32_t n = opts_.sample_every;
    if (n <= 1) return 1;
    std::uint32_t x = rng_;
    x ^= x << 13;
    x ^= x >> 17;
    x ^= x << 5;
    rng_ = x;
    return n / 2 + x % n;
  }

  // One buffered kind/machine attribution of the in-flight sampled
  // iteration. An iteration steps at most one event, so one entry is the
  // common case; the arrays hold a few for safety and overflow commits
  // straight to the slot (bypassing rejection — the phase rows, which the
  // conservation gate sums, are never bypassed).
  struct PendingSlot {
    std::uint32_t slot = 0;
    std::uint64_t ticks = 0;
    std::uint64_t count = 0;
  };
  static constexpr int kMaxPending = 4;

  static void pend_slot(PendingSlot* pending, int& n, std::vector<Slot>& slots,
                        std::uint32_t slot, std::uint64_t dticks) {
    for (int i = 0; i < n; ++i) {
      if (pending[i].slot == slot) {
        pending[i].ticks += dticks;
        ++pending[i].count;
        return;
      }
    }
    if (n < kMaxPending) {
      pending[n++] = PendingSlot{slot, dticks, 1};
      return;
    }
    slots[slot].ticks += dticks;
    ++slots[slot].count;
  }

  ProfOptions opts_;
  std::uint32_t countdown_ = 1;
  std::uint32_t rng_ = 0x9e3779b9u;  // fixed seed: deterministic sampling
  bool pending_active_ = false;
  std::uint64_t pending_phase_ticks_[kProfPhaseCount] = {};
  std::uint64_t pending_phase_hits_[kProfPhaseCount] = {};
  PendingSlot pending_kinds_[kMaxPending];
  PendingSlot pending_machines_[kMaxPending];
  int pending_kind_n_ = 0;
  int pending_machine_n_ = 0;
  std::uint64_t rejected_iterations_ = 0;
  double bracket_ticks_ = 0;
  std::uint64_t bound_uid_ = 0;
  std::uint64_t iterations_ = 0;
  std::uint64_t sampled_iterations_ = 0;
  std::uint64_t events_ = 0;
  std::uint64_t run_t0_ticks_ = 0;
  std::uint64_t run_t0_ns_ = 0;
  std::uint64_t run_t0_cpu_ = 0;
  std::uint64_t ticks_span_ = 0;
  double wall_ns_ = 0;
  double cpu_ns_ = 0;
  std::uint64_t phase_ticks_[kProfPhaseCount] = {};
  std::uint64_t phase_hits_[kProfPhaseCount] = {};
  std::vector<std::uint32_t> kind_memo_;     // executor kind id -> slot
  std::vector<std::uint32_t> machine_memo_;  // machine index -> slot
  std::vector<Slot> kind_slots_;
  std::vector<Slot> machine_slots_;
  std::unordered_map<std::string, std::uint32_t> kind_index_;
  std::unordered_map<std::string, std::uint32_t> machine_index_;
};

// --- cold rendering (prof.cpp) ---------------------------------------------

// Folded-stack output, one "frame;frame;frame count" line per stack, ns as
// the count unit — pipe through flamegraph.pl (or paste into a viewer like
// speedscope) for a flame graph. Stacks: exec;<phase> for loop phases,
// exec;event;step;<KIND> for per-kind step time, machine;<Type> for
// per-machine-type step time.
void write_folded(std::ostream& os, const ProfReport& report);

// Human-readable self-time table: per-phase ns/event, share of wall, hits;
// then top kinds and machine types. bench_executor and psc-report print
// this; the phase rows are what the 5%-of-wall conservation gate sums.
void write_prof_table(std::ostream& os, const ProfReport& report);

// Streams the profiler's cumulative per-phase tick totals into a Chrome
// trace as one counter track per phase ("exec.prof ticks"), sampled on a
// simulated-time cadence. Tick units, not ns: the calibration ratio is
// only known at run_end, by which time the first-attached ChromeTraceProbe
// has already closed the document — relative phase weight over time is
// what the track is for. Attached by RunObserver when both a profiler and
// a chrome writer are configured.
class ProfCounterProbe final : public Probe {
 public:
  ProfCounterProbe(const Profiler& prof, ChromeTraceWriter& writer,
                   Duration cadence = milliseconds(1));

  bool observes_events() const override { return false; }
  Time next_time_interest() const override { return next_sample_; }
  void on_run_begin(Time now) override;
  void on_time_advance(Time from, Time to) override;

 private:
  void sample(Time t);

  const Profiler& prof_;
  ChromeTraceWriter& writer_;
  Duration cadence_;
  Time next_sample_ = 0;
};

}  // namespace psc
