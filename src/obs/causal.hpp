// Causal tracing: happens-before spans over an execution.
//
// The paper's bounds are statements about *chains* of causally related
// events — a flood completes within D*(d2+2eps) because a send→deliver→act
// chain of that length exists, Simulation 1 hides up to 2eps inside a
// buffer hold, the MMT model hides up to ell between a tick and the step
// it enables. The point probes of probes.hpp observe each quantity in
// isolation; this module materializes the relation connecting them
// (runtime analysis of timed distributed traces in the sense of Yang et
// al., and the happens-before relation online monitors under partial
// synchrony are built on).
//
// Every executed action becomes a *span* (SpanId = its 0-based ordinal in
// the event stream). Happens-before edges are derived from
//   (a) per-process program order — process = the action's node, or a
//       pseudo-process per owner machine for node-less actions; and
//   (b) message causality via Message::uid (Section 3's uniqueness
//       assumption): SENDMSG → ESENDMSG → ERECVMSG → RECVMSG chains.
// Edges are classified into the three places the paper says time can
// hide — channel wait, Simulation-1 buffer hold, MMT tick/step wait — so
// a critical path through the DAG is also a latency attribution.
//
// Components:
//   MessageIndex      the uid → send/last-event index, the single source
//                     of truth for message matching (ChannelLatencyProbe
//                     shares it instead of keeping a private map);
//   CausalDag         compact in-memory DAG with vector-clock stamping,
//                     happens-before queries, critical-path extraction,
//                     and JSONL export;
//   CausalTraceProbe  builds the DAG from the probe stream and, given a
//                     ChromeTraceWriter, emits trace_event flow events
//                     (ph s/t/f) so Perfetto renders message arrows.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/trace.hpp"
#include "obs/probe.hpp"

namespace psc {

class ChromeTraceWriter;
class ReceiveBuffer;

using SpanId = std::uint32_t;
inline constexpr SpanId kNoSpan = 0xffffffffu;

// Why the target span could not have happened earlier than its source.
enum class EdgeKind : std::uint8_t {
  kProgram = 0,  // per-process program order
  kChannel,      // channel transit: send → the channel's delivery
  kBuffer,       // Simulation-1 buffer: send-buffer forward (0ns) or the
                 // receive buffer's ERECVMSG → RECVMSG hold
  kTick,         // MMT: the node could only act at its step/tick schedule
  kStart,        // virtual: run start → a root span (critical paths only)
};
inline constexpr std::size_t kNumEdgeKinds = 5;
const char* to_string(EdgeKind k);

struct CausalEdge {
  SpanId from = kNoSpan;
  EdgeKind kind = EdgeKind::kProgram;
  // kBuffer release edges reported by a watched ReceiveBuffer additionally
  // carry the *clock-time* hold and whether the message actually waited
  // (tag > clock at arrival — the eps > 0 signature); real-time duration
  // is always span(to).time - span(from).time.
  Duration clock_hold = 0;
  bool waited = false;
};

struct CausalSpan {
  std::uint32_t name_id = 0;  // interned action name (CausalDag::name)
  int node = kNoNode;
  int peer = kNoNode;
  int owner = -1;            // executing machine index
  Time time = 0;             // real time of the event
  Time clock = kNoClockTag;  // owner's clock reading, if clocked
  std::uint64_t uid = 0;     // message uid, 0 when the action carries none
  std::uint32_t proc = 0;    // dense process index (vector-clock slot)
};

struct CriticalStep {
  SpanId span = kNoSpan;
  EdgeKind via = EdgeKind::kStart;  // edge that binds `span` to the step
                                    // before it (kStart for the root)
  Duration dur = 0;                 // real time attributed to that edge
};

struct CriticalPath {
  std::vector<CriticalStep> steps;  // root first, sink last
  Duration total = 0;               // sum of durs == span(sink).time
  // Per-kind latency attribution: where the sink's completion time hides.
  std::array<Duration, kNumEdgeKinds> by_kind{};
};

// --- MessageIndex ---------------------------------------------------------

// uid → send/last-event index over the run's message actions. Exactly one
// feeder calls observe() per event (CausalTraceProbe when present, else
// the probe that owns the index), so send→deliver matching lives in one
// place; any number of consumers read it.
class MessageIndex {
 public:
  enum class Stage : std::uint8_t { kNone, kSend, kESend, kERecv, kRecv };

  struct Record {
    Time send_time = -1;         // real time of the first SENDMSG/ESENDMSG
    SpanId send_span = kNoSpan;  // span of that send (kNoSpan if unnumbered)
    Time last_time = -1;         // latest event touching this uid
    SpanId last_span = kNoSpan;
    Stage last_stage = Stage::kNone;
  };

  // SENDMSG/ESENDMSG/ERECVMSG/RECVMSG → stage; anything else kNone.
  static Stage stage_of(std::string_view name);

  // Records `e` when it carries a message; `span` is the event's ordinal
  // (kNoSpan when the feeder does not number events).
  void observe(const TimedEvent& e, SpanId span);

  const Record* find(std::uint64_t uid) const;
  std::size_t size() const { return map_.size(); }
  void clear() { map_.clear(); }

 private:
  std::unordered_map<std::uint64_t, Record> map_;
};

// --- CausalDag ------------------------------------------------------------

class CausalDag {
 public:
  std::size_t size() const { return spans_.size(); }
  const CausalSpan& span(SpanId id) const { return spans_[id]; }
  const std::vector<CausalEdge>& preds(SpanId id) const { return preds_[id]; }
  const std::string& name(SpanId id) const {
    return names_[spans_[id].name_id];
  }
  std::size_t process_count() const { return procs_; }

  // Vector clock of a span: slot p counts the spans of process p in the
  // span's causal past (itself included). Missing slots read 0.
  const std::vector<std::uint32_t>& vector_clock(SpanId id) const {
    return vcs_[id];
  }
  // Strict happens-before (a != b and a in b's causal past).
  bool happens_before(SpanId a, SpanId b) const;
  bool concurrent(SpanId a, SpanId b) const {
    return a != b && !happens_before(a, b) && !happens_before(b, a);
  }

  // Last span whose action has this name, kNoSpan if none.
  SpanId find_last(std::string_view name) const;

  // Longest real-time path into `sink`: walk back through the binding
  // (latest-source) predecessor at each span, then charge the root's start
  // time to kStart. The durations telescope, so total == span(sink).time —
  // the path *explains* the sink's completion time, and by_kind says where
  // it hid (channel wait vs buffer hold vs tick wait vs local order).
  CriticalPath critical_path(SpanId sink) const;

  // One JSON object per span per line: identity, timing, vector clock,
  // predecessor edges with kinds and durations.
  void write_jsonl(std::ostream& os) const;

  // Canonical text form with message uids normalized by first appearance —
  // byte-comparable across runs (tests pin legacy-scan vs incremental
  // scheduler DAG equality with this).
  std::string to_text() const;

  // --- construction (driven by CausalTraceProbe) ---
  SpanId add_span(const TimedEvent& e);
  void add_edge(SpanId to, const CausalEdge& e);
  // Finalizes `to`'s vector clock from its recorded predecessors; must be
  // called once per span, after all its edges are added.
  void stamp(SpanId to);

 private:
  std::uint32_t intern_name(const std::string& n);
  std::uint32_t intern_proc(int node, int owner);

  std::vector<CausalSpan> spans_;
  std::vector<std::vector<CausalEdge>> preds_;
  std::vector<std::vector<std::uint32_t>> vcs_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, std::uint32_t> name_ids_;
  std::unordered_map<std::int64_t, std::uint32_t> proc_ids_;
  std::size_t procs_ = 0;
};

// --- CausalTraceProbe -----------------------------------------------------

class CausalTraceProbe final : public Probe {
 public:
  CausalTraceProbe() = default;

  // Flow-event emission (optional): message chains become ph s/t/f flow
  // events in the trace document, which Perfetto renders as arrows between
  // the per-machine instant events. Set before the run starts.
  void set_trace(ChromeTraceWriter* trace) { trace_ = trace; }

  // Installs a release hook on a Simulation-1 receive buffer so kBuffer
  // edges carry the clock-time hold and the waited flag. Non-owning; the
  // buffer must outlive the run.
  void watch(ReceiveBuffer* rb);

  const CausalDag& dag() const { return dag_; }
  const MessageIndex& index() const { return index_; }

  void on_event(const TimedEvent& e, const Machine& owner) override;

 private:
  struct Release {  // pending receive-buffer release info, keyed by uid
    Duration clock_hold = 0;
    bool waited = false;
  };

  CausalDag dag_;
  MessageIndex index_;
  ChromeTraceWriter* trace_ = nullptr;
  std::vector<SpanId> last_in_proc_;  // proc index → latest span
  std::unordered_map<std::uint64_t, Release> releases_;
};

}  // namespace psc
