#include "obs/trace_export.hpp"

#include <ostream>
#include <sstream>

#include "core/action.hpp"
#include "core/machine.hpp"
#include "obs/metrics.hpp"

namespace psc {

namespace {

// ns -> the format's microsecond timestamps, without precision games.
void put_ts(std::ostream& os, Time t) {
  const Time us = t / 1000;
  const Time frac = t % 1000;
  os << us << "." << static_cast<char>('0' + frac / 100)
     << static_cast<char>('0' + (frac / 10) % 10)
     << static_cast<char>('0' + frac % 10);
}

}  // namespace

ChromeTraceWriter::ChromeTraceWriter(std::ostream& os) : os_(os) {
  os_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
}

ChromeTraceWriter::~ChromeTraceWriter() { close(); }

void ChromeTraceWriter::close() {
  if (closed_) return;
  os_ << "\n]}\n";
  os_.flush();
  closed_ = true;
}

void ChromeTraceWriter::begin_record() {
  os_ << (first_ ? "\n" : ",\n");
  first_ = false;
}

void ChromeTraceWriter::thread_name(int pid, int tid, std::string_view name) {
  begin_record();
  os_ << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
      << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
      << json_escape(name) << "\"}}";
}

void ChromeTraceWriter::instant(std::string_view name, Time t, int tid,
                                std::string_view args_json) {
  begin_record();
  os_ << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":" << tid
      << ",\"name\":\"" << json_escape(name) << "\",\"ts\":";
  put_ts(os_, t);
  if (!args_json.empty()) os_ << ",\"args\":" << args_json;
  os_ << "}";
}

void ChromeTraceWriter::complete(std::string_view name, Time start,
                                 Duration dur, int tid,
                                 std::string_view args_json) {
  begin_record();
  os_ << "{\"ph\":\"X\",\"pid\":0,\"tid\":" << tid << ",\"name\":\""
      << json_escape(name) << "\",\"ts\":";
  put_ts(os_, start);
  os_ << ",\"dur\":";
  put_ts(os_, dur);
  if (!args_json.empty()) os_ << ",\"args\":" << args_json;
  os_ << "}";
}

void ChromeTraceWriter::counter(std::string_view name, std::string_view series,
                                Time t, double v) {
  begin_record();
  os_ << "{\"ph\":\"C\",\"pid\":0,\"name\":\"" << json_escape(name)
      << "\",\"ts\":";
  put_ts(os_, t);
  os_ << ",\"args\":{\"" << json_escape(series) << "\":" << v << "}}";
}

namespace {

void put_flow(std::ostream& os, char ph, std::string_view name,
              std::uint64_t id, Time t, int tid, bool bind_enclosing) {
  os << "{\"ph\":\"" << ph << "\",\"cat\":\"msg\",\"id\":" << id
     << ",\"pid\":0,\"tid\":" << tid << ",\"name\":\"" << json_escape(name)
     << "\",\"ts\":";
  put_ts(os, t);
  if (bind_enclosing) os << ",\"bp\":\"e\"";
  os << "}";
}

}  // namespace

void ChromeTraceWriter::flow_start(std::string_view name, std::uint64_t id,
                                   Time t, int tid) {
  begin_record();
  put_flow(os_, 's', name, id, t, tid, false);
}

void ChromeTraceWriter::flow_step(std::string_view name, std::uint64_t id,
                                  Time t, int tid) {
  begin_record();
  put_flow(os_, 't', name, id, t, tid, false);
}

void ChromeTraceWriter::flow_end(std::string_view name, std::uint64_t id,
                                 Time t, int tid) {
  begin_record();
  put_flow(os_, 'f', name, id, t, tid, true);
}

std::string chrome_event_args(const TimedEvent& e) {
  std::ostringstream os;
  os << "{\"visible\":" << (e.visible ? "true" : "false");
  if (e.clock != kNoClockTag) {
    os << ",\"clock_ns\":" << e.clock << ",\"skew_ns\":" << (e.clock - e.time);
  }
  if (e.action.node != kNoNode) os << ",\"node\":" << e.action.node;
  if (e.action.peer != kNoNode) os << ",\"peer\":" << e.action.peer;
  os << "}";
  return os.str();
}

ChromeTraceProbe::ChromeTraceProbe(std::ostream& os) : writer_(os) {}

void ChromeTraceProbe::on_event(const TimedEvent& e, const Machine& owner) {
  if (named_tracks_.insert(e.owner).second) {
    writer_.thread_name(0, e.owner, owner.name());
  }
  writer_.instant(e.action.name, e.time, e.owner, chrome_event_args(e));
}

void ChromeTraceProbe::on_run_end(Time /*now*/) { writer_.close(); }

void write_chrome_trace(std::ostream& os, const TimedTrace& events,
                        const std::vector<std::string>& machine_names) {
  ChromeTraceWriter w(os);
  for (std::size_t i = 0; i < machine_names.size(); ++i) {
    w.thread_name(0, static_cast<int>(i), machine_names[i]);
  }
  for (const TimedEvent& e : events) {
    w.instant(e.action.name, e.time, e.owner, chrome_event_args(e));
  }
  w.close();
}

}  // namespace psc
