#include "obs/prof.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace_export.hpp"

namespace psc {

namespace {

// Shared scaling for report assembly: sampled ticks -> estimated whole-run
// nanoseconds. Every divide is zero-guarded so a 0-step (or 0-sample) run
// reports clean zeros instead of NaN/inf (satellite: derived-rate guards).
// Each accumulated span carried the cost of its own bracket (the ticks()
// read + add() bookkeeping) — scaled by sample_every that self-cost would
// systematically overstate every phase, so it is subtracted per hit first,
// clamped at zero for spans shorter than the timer itself.
struct Scaling {
  double ns_per_tick = 0;
  double sample_scale = 1.0;
  double bracket_ticks = 0;
  double ns(std::uint64_t ticks, std::uint64_t hits) const {
    const double corrected =
        static_cast<double>(ticks) - bracket_ticks * static_cast<double>(hits);
    return (corrected > 0 ? corrected : 0.0) * ns_per_tick * sample_scale;
  }
};

std::vector<ProfEntry> scaled_slots(const std::vector<ProfEntry>& raw) {
  std::vector<ProfEntry> out = raw;
  std::sort(out.begin(), out.end(), [](const ProfEntry& a, const ProfEntry& b) {
    return a.ns > b.ns || (a.ns == b.ns && a.name < b.name);
  });
  return out;
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f", v);
  return buf;
}

std::string pct(double num, double den) {
  if (den <= 0) return "0.0%";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f%%", 100.0 * num / den);
  return buf;
}

}  // namespace

ProfReport Profiler::report() const {
  ProfReport r;
  r.sample_every = opts_.sample_every;
  r.iterations = iterations_;
  r.sampled_iterations = sampled_iterations_;
  r.rejected_iterations = rejected_iterations_;
  r.events = events_;
  r.wall_ns = wall_ns_;
  r.cpu_ns = cpu_ns_ > 0 ? cpu_ns_ : wall_ns_;
  Scaling sc;
  sc.ns_per_tick =
      ticks_span_ == 0 ? 0.0 : wall_ns_ / static_cast<double>(ticks_span_);
  // Extrapolate from *committed* samples only: rejected iterations carry no
  // span data, so dividing by the full sampled count would bias every
  // phase low by the rejection rate.
  const std::uint64_t committed = sampled_iterations_ - rejected_iterations_;
  sc.sample_scale = committed == 0 ? 1.0
                                   : static_cast<double>(iterations_) /
                                         static_cast<double>(committed);
  sc.bracket_ticks = bracket_ticks();
  r.ns_per_tick = sc.ns_per_tick;
  r.sample_scale = sc.sample_scale;
  r.bracket_ticks = sc.bracket_ticks;
  r.phases.resize(kProfPhaseCount);
  for (std::size_t i = 0; i < kProfPhaseCount; ++i) {
    r.phases[i].name = kProfPhaseNames[i];
    r.phases[i].count = phase_hits_[i];
    r.phases[i].ns = sc.ns(phase_ticks_[i], phase_hits_[i]);
  }
  std::vector<ProfEntry> kinds;
  kinds.reserve(kind_slots_.size());
  for (const Slot& s : kind_slots_) {
    kinds.push_back(ProfEntry{s.name, s.count, sc.ns(s.ticks, s.count)});
  }
  r.kinds = scaled_slots(kinds);
  std::vector<ProfEntry> machines;
  machines.reserve(machine_slots_.size());
  for (const Slot& s : machine_slots_) {
    machines.push_back(ProfEntry{s.name, s.count, sc.ns(s.ticks, s.count)});
  }
  r.machines = scaled_slots(machines);
  return r;
}

void Profiler::export_metrics(MetricsRegistry& registry) const {
  const ProfReport r = report();
  registry.gauge("exec.prof.sample_every")
      .set(static_cast<double>(r.sample_every));
  registry.gauge("exec.prof.sample_scale").set(r.sample_scale);
  registry.gauge("exec.prof.iterations")
      .set(static_cast<double>(r.iterations));
  registry.gauge("exec.prof.sampled_iterations")
      .set(static_cast<double>(r.sampled_iterations));
  registry.gauge("exec.prof.rejected_iterations")
      .set(static_cast<double>(r.rejected_iterations));
  registry.gauge("exec.prof.events").set(static_cast<double>(r.events));
  registry.gauge("exec.prof.wall_ns").set(r.wall_ns);
  registry.gauge("exec.prof.cpu_ns").set(r.cpu_ns);
  registry.gauge("exec.prof.ns_per_tick").set(r.ns_per_tick);
  registry.gauge("exec.prof.bracket_ticks").set(r.bracket_ticks);
  const double total = r.phase_total_ns();
  registry.gauge("exec.prof.phase_total_ns").set(total);
  for (const ProfEntry& p : r.phases) {
    registry.gauge("exec.prof.phase." + p.name + ".ns").set(p.ns);
    registry.gauge("exec.prof.phase." + p.name + ".share")
        .set(total > 0 ? p.ns / total : 0.0);
  }
  for (const ProfEntry& k : r.kinds) {
    registry.gauge("exec.prof.kind." + k.name + ".ns").set(k.ns);
  }
}

void write_folded(std::ostream& os, const ProfReport& report) {
  // flamegraph.pl wants integer counts; ns are the natural unit here.
  const auto put = [&os](const std::string& stack, double ns) {
    const auto n = static_cast<std::uint64_t>(ns < 0 ? 0 : ns + 0.5);
    if (n == 0) return;
    os << stack << " " << n << "\n";
  };
  const auto& ph = report.phases;
  const auto ns = [&ph](ProfPhase p) {
    return ph[static_cast<std::size_t>(p)].ns;
  };
  put("exec;advance", ns(ProfPhase::kAdvance));
  put("exec;poll", ns(ProfPhase::kPoll));
  put("exec;pick", ns(ProfPhase::kPick));
  put("exec;event;route", ns(ProfPhase::kRoute));
  // Step time splits by kind; whatever the kind rows do not cover (events
  // on unsampled... none — kinds are fed from the same sampled spans, but
  // rounding can differ) stays on the parent frame as self time.
  double kind_ns = 0;
  for (const ProfEntry& k : report.kinds) {
    put("exec;event;step;" + k.name, k.ns);
    kind_ns += k.ns;
  }
  const double step_rest = ns(ProfPhase::kStep) - kind_ns;
  if (step_rest > 0.5) put("exec;event;step", step_rest);
  put("exec;event;record", ns(ProfPhase::kRecord));
  put("exec;event;probe", ns(ProfPhase::kProbe));
  put("exec;event;lint", ns(ProfPhase::kLint));
  put("exec;event;flight", ns(ProfPhase::kFlight));
  // A second root: the same step time re-keyed by machine type, so the
  // flame graph answers "which machine kind is expensive" independently of
  // the action-kind split above.
  for (const ProfEntry& m : report.machines) {
    put("machine;" + m.name, m.ns);
  }
}

void write_prof_table(std::ostream& os, const ProfReport& report) {
  const double total = report.phase_total_ns();
  const double events = static_cast<double>(report.events);
  os << "executor profile: " << report.events << " events, "
     << report.iterations << " iterations (" << report.sampled_iterations
     << " sampled, 1-in-" << report.sample_every;
  if (report.rejected_iterations > 0) {
    os << ", " << report.rejected_iterations << " rejected as preempted";
  }
  os << "), wall " << fmt(report.wall_ns / 1e6) << " ms, cpu "
     << fmt(report.cpu_ns / 1e6) << " ms, phases cover "
     << pct(total, report.cpu_ns) << " of cpu (timer self-cost "
     << fmt(report.bracket_ticks) << " ticks/bracket compensated)\n";
  os << "  phase    | ns/event | share  | sampled hits\n";
  for (const ProfEntry& p : report.phases) {
    if (p.count == 0) continue;
    char line[160];
    std::snprintf(line, sizeof line, "  %-8s | %8s | %6s | %llu\n",
                  p.name.c_str(),
                  fmt(events > 0 ? p.ns / events : 0.0).c_str(),
                  pct(p.ns, total).c_str(),
                  static_cast<unsigned long long>(p.count));
    os << line;
  }
  const auto top = [&](const char* title, const std::vector<ProfEntry>& v) {
    if (v.empty()) return;
    os << "  " << title << " (step ns/event):";
    std::size_t shown = 0;
    for (const ProfEntry& e : v) {
      if (shown++ == 6) {
        os << " ...";
        break;
      }
      os << " " << e.name << "="
         << fmt(events > 0 ? e.ns / events : 0.0);
    }
    os << "\n";
  };
  top("kinds", report.kinds);
  top("machines", report.machines);
}

ProfCounterProbe::ProfCounterProbe(const Profiler& prof,
                                   ChromeTraceWriter& writer, Duration cadence)
    : prof_(prof), writer_(writer), cadence_(cadence > 0 ? cadence : 1) {}

void ProfCounterProbe::on_run_begin(Time now) {
  next_sample_ = now + cadence_;
}

void ProfCounterProbe::on_time_advance(Time /*from*/, Time to) {
  if (to < next_sample_) return;
  sample(to);
  // Re-arm past `to` so a large jump emits one sample, not a backlog.
  while (next_sample_ <= to) next_sample_ += cadence_;
}

void ProfCounterProbe::sample(Time t) {
  for (std::size_t i = 0; i < kProfPhaseCount; ++i) {
    const auto ph = static_cast<ProfPhase>(i);
    const std::uint64_t ticks = prof_.phase_ticks(ph);
    if (ticks == 0 && prof_.phase_hits(ph) == 0) continue;
    writer_.counter("exec.prof ticks", kProfPhaseNames[i], t,
                    static_cast<double>(ticks));
  }
}

}  // namespace psc
