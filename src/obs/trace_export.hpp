// Exporters: Chrome trace_event JSON and post-hoc trace dumps.
//
// ChromeTraceWriter emits the JSON-object form of the Chrome tracing format
// ({"traceEvents":[...]}), which loads directly in chrome://tracing and
// Perfetto (ui.perfetto.dev). Mapping:
//   * each executed action  -> an instant event ("ph":"i") on the track
//     (pid 0, tid = machine index) of the machine that controlled it;
//   * machine names         -> thread_name metadata ("ph":"M");
//   * sampled quantities    -> counter events ("ph":"C") — clock skew per
//     node, receive-buffer occupancy, etc., rendered as stacked line tracks.
// Timestamps are microseconds (the format's unit); our integer nanoseconds
// map to fractional "ts" values losslessly for runs under ~2^52 ns.
//
// The writer is streaming: events are written as produced, nothing is
// buffered, and close() (or destruction) finalizes the document.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "obs/probe.hpp"

namespace psc {

class ChromeTraceWriter {
 public:
  // The stream must outlive the writer. Writes the document prefix now.
  explicit ChromeTraceWriter(std::ostream& os);
  ~ChromeTraceWriter();  // close()s if still open

  ChromeTraceWriter(const ChromeTraceWriter&) = delete;
  ChromeTraceWriter& operator=(const ChromeTraceWriter&) = delete;

  // Thread (track) metadata: names the track `tid` under process `pid`.
  void thread_name(int pid, int tid, std::string_view name);

  // Instant event at time t on track tid. `args_json`, when nonempty, is a
  // complete JSON object used as the event's "args".
  void instant(std::string_view name, Time t, int tid,
               std::string_view args_json = {});

  // Duration ("complete") event: [start, start+dur] on track tid.
  void complete(std::string_view name, Time start, Duration dur, int tid,
                std::string_view args_json = {});

  // Counter sample: series `series` of counter `name` has value v at t.
  void counter(std::string_view name, std::string_view series, Time t,
               double v);

  // Flow events (ph s/t/f): arrows between tracks, matched by
  // (category "msg", name, id). CausalTraceProbe uses the message uid as
  // the flow id, so each message's send → deliver chain renders as one
  // arrow sequence in Perfetto. flow_end binds to the enclosing point
  // ("bp":"e") per the trace_event spec.
  void flow_start(std::string_view name, std::uint64_t id, Time t, int tid);
  void flow_step(std::string_view name, std::uint64_t id, Time t, int tid);
  void flow_end(std::string_view name, std::uint64_t id, Time t, int tid);

  // Finalizes the JSON document. Idempotent.
  void close();
  bool closed() const { return closed_; }

 private:
  void begin_record();

  std::ostream& os_;
  bool first_ = true;
  bool closed_ = false;
};

// A probe that streams every executed event into a ChromeTraceWriter, so a
// run becomes a Perfetto-loadable timeline with one track per machine.
// Tracks are named lazily from Machine::name() on first use. Other probes
// may share writer() to add counter tracks to the same document; the
// document is finalized at on_run_end.
class ChromeTraceProbe final : public Probe {
 public:
  explicit ChromeTraceProbe(std::ostream& os);

  ChromeTraceWriter& writer() { return writer_; }

  void on_event(const TimedEvent& e, const Machine& owner) override;
  void on_run_end(Time now) override;

 private:
  ChromeTraceWriter writer_;
  std::unordered_set<int> named_tracks_;
};

// Post-hoc export of an already-recorded trace (for callers that only have
// the TimedTrace, e.g. loaded from disk). `machine_names[i]` labels track i
// when provided.
void write_chrome_trace(std::ostream& os, const TimedTrace& events,
                        const std::vector<std::string>& machine_names = {});

// The "args" object the exporters attach to an event (clock reading,
// visibility); exposed for reuse/testing.
std::string chrome_event_args(const TimedEvent& e);

}  // namespace psc
