// The bound-slack observatory: measure *how close* a run comes to the
// paper's quantitative bounds, not just whether it stayed inside them.
//
// Two pieces, both executor Probes writing into a MetricsRegistry:
//
//   TimeSeries / TimeSeriesProbe
//     Samples every registered counter/gauge/histogram on a simulated-time
//     cadence into per-series ring-buffered windows (the last `window`
//     samples are kept), exported as JSONL for plotting. The registry stays
//     the aggregate story; the time series is its evolution.
//
//   BoundSlackProbe
//     For every clock reading, delivery, Simulation-1 release, and MMT
//     tick/step it computes the *signed distance to the governing
//     theoretical bound* (analysis/windows.hpp): the C_eps drift envelope,
//     the [d1, d2] delivery band, the Theorem 4.7 clock-time window, and
//     the MMT [0, ell] boundmap. Positive slack is adversarial room left
//     unused, zero is a tight schedule, negative is a bound violation (the
//     same condition PSC101/102/104/105 report). Slack distributions land
//     in per-kind histograms plus per-node / per-channel min-tracking
//     gauges, so "minimize slack" is a first-class search signal for
//     adversarial schedule hunting (ROADMAP item 4) and "min slack >= 0"
//     is a sweep-cell gate for report generation (tools/psc-report).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/uid_index.hpp"
#include "analysis/windows.hpp"
#include "obs/metrics.hpp"
#include "obs/probe.hpp"

namespace psc {

struct TimeSeriesOptions {
  // Simulated-time sampling period.
  Duration cadence = milliseconds(1);
  // Ring capacity per series: the last `window` samples are kept, older
  // points are overwritten (counted in `dropped`).
  std::size_t window = 4096;
};

// Windowed sink over a MetricsRegistry. sample(now) snapshots every
// registered metric: a counter contributes its value under its own name, a
// gauge its last set value, a histogram its `.count`, `.p50` and `.p99`
// sub-series. Metrics registered mid-run join at the next sample.
class TimeSeries {
 public:
  explicit TimeSeries(const MetricsRegistry& reg, TimeSeriesOptions opts = {});

  TimeSeries(const TimeSeries&) = delete;
  TimeSeries& operator=(const TimeSeries&) = delete;

  void sample(Time now);

  struct Point {
    Time t = 0;
    double v = 0;
  };

  const TimeSeriesOptions& options() const { return opts_; }
  std::size_t samples_taken() const { return samples_; }
  std::size_t series_count() const { return order_.size(); }
  // Retained points of one series, oldest first (empty when unknown).
  std::vector<Point> points(std::string_view series) const;
  // Points dropped from one series' ring (0 when unknown or never full).
  std::uint64_t dropped(std::string_view series) const;

  // One JSON object per line per series:
  //   {"type":"timeseries","name":"channel.delivered","cadence_ns":...,
  //    "dropped":0,"points":[[t_ns,value],...]}
  // Non-finite values (empty-histogram percentiles) render as null.
  void write_jsonl(std::ostream& os) const;

 private:
  struct Ring {
    std::vector<Point> buf;    // capacity options().window
    std::size_t next = 0;      // write cursor once full
    std::uint64_t dropped = 0;
  };

  void record(const std::string& name, Time t, double v);

  const MetricsRegistry& reg_;
  TimeSeriesOptions opts_;
  std::size_t samples_ = 0;
  std::vector<std::string> order_;  // first-seen order, for stable export
  std::unordered_map<std::string, Ring> series_;
};

// Drives a TimeSeries on the simulated clock: one sample per elapsed
// cadence period (taken at the period boundary — state is constant inside a
// time-passage step, so the boundary snapshot is exact), plus a final
// sample at run end.
class TimeSeriesProbe final : public Probe {
 public:
  explicit TimeSeriesProbe(TimeSeries& ts) : ts_(ts) {}

  // Samples on time passage only — opt out of the per-event dispatch.
  bool observes_events() const override { return false; }
  // Only the advance that crosses the next sample boundary matters; let
  // the executor skip the dispatch for every advance before it.
  Time next_time_interest() const override { return next_; }

  void on_run_begin(Time now) override;
  void on_time_advance(Time from, Time to) override;
  void on_run_end(Time now) override;

 private:
  TimeSeries& ts_;
  Time next_ = 0;
};

struct SlackOptions {
  // C_eps accuracy; negative disables skew slack.
  Duration eps = -1;
  // Physical channel bounds; d2 < 0 disables delivery and Theorem 4.7
  // slack.
  Duration d1 = -1;
  Duration d2 = -1;
  // MMT boundmap upper bound; negative disables tick/step slack.
  Duration ell = -1;
  // Per-node (skew, tick/step) and per-channel (delivery) min-tracking
  // gauges beside the aggregate histograms. Off for huge assemblies where
  // per-entity series would dominate the registry.
  bool per_node = true;
  bool per_channel = true;
};

class BoundSlackProbe final : public Probe {
 public:
  BoundSlackProbe(MetricsRegistry& reg, SlackOptions opts);

  // Slack is measured per event — opt out of the per-advance dispatch.
  bool observes_time() const override { return false; }

  void on_event(const TimedEvent& e, const Machine& owner) override;

  // Minimum observed slack per bound kind; kTimeMax when that bound was
  // never measured (disabled, or no matching events).
  Duration min_ceps() const { return min_ceps_; }
  Duration min_delivery() const { return min_delivery_; }
  Duration min_thm47() const { return min_thm47_; }
  Duration min_mmt() const { return min_mmt_; }
  // Minimum across all measured kinds; kTimeMax when nothing was measured.
  Duration min_slack() const;
  // Samples with negative slack — the violation count PSC1xx would report.
  std::uint64_t violations() const { return violations_->value(); }

 private:
  // Same uid bookkeeping as TraceChecker::check_channel — the window math
  // is shared (analysis/windows.hpp); the matching is re-derived here so
  // the probe runs standalone on any assembly.
  struct MsgRecord {
    Time send_time = -1;
    Time esend_time = -1;
    Time tag = kNoClockTag;
  };

  void feed_ceps(const TimedEvent& e);
  void feed_channel(const TimedEvent& e, const Machine& owner);
  // RECVMSG leg of feed_channel: delivery-band slack in the timed model,
  // Theorem 4.7 window slack for a Simulation 1 buffer release.
  void feed_recv(const TimedEvent& e, const Machine& owner,
                 std::uint64_t uid);
  void feed_mmt(const TimedEvent& e);
  void feed(Histogram* hist, Duration* min_seen, Duration slack);
  // Per-entity gauges are cached by node id / machine identity so the hot
  // path never builds a name string; the registry name is built once on
  // first sight ("<prefix>.node<i>", "<prefix>.<channel name>").
  Gauge* node_gauge(std::unordered_map<int, Gauge*>& cache,
                    const char* prefix, int node);
  Gauge* channel_gauge(const Machine& owner);

  MetricsRegistry& reg_;
  SlackOptions opts_;
  BoundWindow ceps_, delivery_, thm47_, mmt_;

  Histogram* ceps_hist_ = nullptr;
  Histogram* delivery_hist_ = nullptr;
  Histogram* thm47_hist_ = nullptr;
  Histogram* mmt_hist_ = nullptr;
  Counter* violations_ = nullptr;
  Duration min_ceps_ = kTimeMax;
  Duration min_delivery_ = kTimeMax;
  Duration min_thm47_ = kTimeMax;
  Duration min_mmt_ = kTimeMax;

  UidIndex<MsgRecord> msgs_;
  std::unordered_map<int, Time> last_tick_;   // node -> last TICK time
  std::unordered_map<int, Time> last_local_;  // owner -> last event time
  std::unordered_set<int> mmt_owners_;        // owners that emitted MMTSTEP
  std::unordered_map<int, Gauge*> ceps_gauges_, thm47_gauges_, mmt_gauges_;
  std::unordered_map<const Machine*, Gauge*> channel_gauges_;
};

// Symmetric histogram bounds for signed slack values: duration_bounds()
// (probes.hpp) mirrored through zero, so violations (negative slack) and
// margins resolve at the same granularity.
std::vector<double> slack_bounds();

}  // namespace psc
