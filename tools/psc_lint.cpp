// psc-lint: offline trace invariant checker (Layer 2 of the analyzer).
//
// Replays a trace recorded by psc-sim (--trace=..., text or JSONL) against
// the paper's quantitative predicates — C_eps drift, [d1, d2] delivery,
// Simulation 1's release rule, Theorem 4.7's widened window, the MMT
// boundmap, per-node order preservation — and reports PSC1xx diagnostics.
//
// Usage:
//   psc-lint --trace=PATH [--eps_us=N] [--d1_us=N] [--d2_us=N] [--ell_us=N]
//            [--nodes=N] [--slack_ns=N] [--no-order] [--jsonl=PATH]
//
// Checks whose parameters are omitted are skipped, so a timed-model trace
// can be checked with just --d1_us/--d2_us while a clock-model trace adds
// --eps_us and --nodes. Exit status: 0 clean (or warnings/notes only),
// 1 error-severity diagnostics, 2 usage/IO failure.
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "analysis/trace_check.hpp"
#include "core/trace_io.hpp"
#include "util/check.hpp"

using namespace psc;

namespace {

int usage() {
  std::cerr
      << "usage: psc-lint --trace=PATH [--eps_us=N] [--d1_us=N] [--d2_us=N]\n"
         "                [--ell_us=N] [--nodes=N] [--slack_ns=N]\n"
         "                [--no-order] [--jsonl=PATH]\n";
  return 2;
}

std::map<std::string, std::string> parse_args(int argc, char** argv) {
  std::map<std::string, std::string> args;
  for (int k = 1; k < argc; ++k) {
    std::string s = argv[k];
    if (s.rfind("--", 0) != 0) {
      std::cerr << "bad argument: " << s << "\n";
      std::exit(usage());
    }
    const auto eq = s.find('=');
    if (eq == std::string::npos) {
      args.insert_or_assign(s.substr(2), std::string("1"));
    } else {
      args.insert_or_assign(s.substr(2, eq - 2), s.substr(eq + 1));
    }
  }
  return args;
}

std::int64_t geti(const std::map<std::string, std::string>& a,
                  const std::string& key, std::int64_t def) {
  auto it = a.find(key);
  return it == a.end() ? def : std::stoll(it->second);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv);
  const auto trace_it = args.find("trace");
  if (trace_it == args.end()) return usage();

  TimedTrace trace;
  try {
    std::ifstream in(trace_it->second);
    if (!in) {
      std::cerr << "psc-lint: cannot open " << trace_it->second << "\n";
      return 2;
    }
    trace = read_trace_any(in);
  } catch (const CheckError& e) {
    std::cerr << "psc-lint: failed to parse " << trace_it->second << ": "
              << e.what() << "\n";
    return 2;
  }

  TraceCheckOptions opts;
  const std::int64_t eps_us = geti(args, "eps_us", -1);
  const std::int64_t d1_us = geti(args, "d1_us", -1);
  const std::int64_t d2_us = geti(args, "d2_us", -1);
  const std::int64_t ell_us = geti(args, "ell_us", -1);
  if (eps_us >= 0) opts.eps = microseconds(eps_us);
  if (d1_us >= 0) opts.d1 = microseconds(d1_us);
  if (d2_us >= 0) opts.d2 = microseconds(d2_us);
  if (ell_us >= 0) opts.ell = microseconds(ell_us);
  opts.num_nodes = static_cast<int>(geti(args, "nodes", 0));
  opts.slack = geti(args, "slack_ns", opts.slack);
  if (args.count("no-order") != 0) opts.check_order = false;

  const DiagnosticReport report = check_trace(trace, opts);

  const auto jsonl_it = args.find("jsonl");
  if (jsonl_it != args.end()) {
    std::ofstream out(jsonl_it->second);
    if (!out) {
      std::cerr << "psc-lint: cannot write " << jsonl_it->second << "\n";
      return 2;
    }
    report.write_jsonl(out);
  }

  std::cout << "psc-lint: " << trace.size() << " event(s) checked\n";
  if (report.empty()) {
    std::cout << "clean: no diagnostics\n";
    return 0;
  }
  std::cout << report.to_text();
  return report.has_errors() ? 1 : 0;
}
