// psc-flight: offline decoder for flight-recorder snapshots (obs/flight.hpp).
//
// Reads a binary .fly snapshot (written by FlightRecorder::dump, psc-sim
// --flight, or the dump-on-violation hook) and reconstructs the normalized
// TimedEvent stream, so the recorded window flows into the same offline
// tooling as a live trace dump: psc-lint, the causal DAG, golden diffs.
//
//   psc-flight <snapshot.fly> [options]
//     --out=PATH     write the decoded trace to PATH (default: stdout)
//     --jsonl        emit JSON Lines (psc-lint's interchange form) instead
//                    of the plain-text trace format
//     --normalize    remap message uids to first-occurrence order (1,2,...)
//                    so decoded windows diff cleanly across runs
//     --stats        print a snapshot summary (records, drops, kinds,
//                    histogram state) to stderr and skip the trace output
//                    unless --out was given explicitly
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "core/trace_io.hpp"
#include "obs/flight.hpp"
#include "util/check.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " <snapshot.fly> [--out=PATH] [--jsonl] [--normalize]"
               " [--stats]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string in_path;
  std::string out_path;
  bool jsonl = false;
  bool normalize = false;
  bool stats = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg == "--jsonl") {
      jsonl = true;
    } else if (arg == "--normalize") {
      normalize = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "psc-flight: unknown flag " << arg << "\n";
      return usage(argv[0]);
    } else if (in_path.empty()) {
      in_path = arg;
    } else {
      std::cerr << "psc-flight: more than one input file\n";
      return usage(argv[0]);
    }
  }
  if (in_path.empty()) return usage(argv[0]);

  std::ifstream is(in_path, std::ios::binary);
  if (!is) {
    std::cerr << "psc-flight: cannot open " << in_path << "\n";
    return 1;
  }

  psc::FlightSnapshot snap;
  try {
    snap = psc::read_snapshot(is);
  } catch (const psc::CheckError& e) {
    std::cerr << "psc-flight: " << in_path << ": " << e.what() << "\n";
    return 1;
  }

  psc::TimedTrace trace = psc::decode_snapshot(snap);
  if (normalize) trace = psc::normalize_uids(std::move(trace));

  if (stats) {
    std::cerr << "snapshot " << in_path << ": " << snap.records.size()
              << " records retained, " << snap.total_recorded
              << " recorded, " << snap.dropped << " dropped (ring"
              << " eviction), " << snap.kinds.size() << " kinds, "
              << snap.strings.size() << " strings\n";
    if (!snap.records.empty()) {
      std::cerr << "  window: seq [" << snap.records.front().seq << ", "
                << snap.records.back().seq << "], time ["
                << psc::format_time(snap.records.front().time) << ", "
                << psc::format_time(snap.records.back().time) << "]\n";
    }
  }

  const bool want_trace = !stats || !out_path.empty();
  if (want_trace) {
    std::ofstream of;
    std::ostream* os = &std::cout;
    if (!out_path.empty()) {
      of.open(out_path);
      if (!of) {
        std::cerr << "psc-flight: cannot write " << out_path << "\n";
        return 1;
      }
      os = &of;
    }
    if (jsonl) {
      psc::write_trace_jsonl(*os, trace);
    } else {
      psc::write_trace(*os, trace);
    }
    if (!os->good()) {
      std::cerr << "psc-flight: write failed\n";
      return 1;
    }
  }
  return 0;
}
