// psc-report — parameter-sweep experiment runner and cost-table renderer.
//
//   psc-report --sweep=CONFIG [--markdown=PATH] [--json=PATH]
//              [--update=PATH] [--profile] [--quiet]
//
// Runs the sweep described by CONFIG (see obs/experiment.hpp for the
// format), prints the Section 6.3 cost table as Markdown (or writes it to
// --markdown), writes per-cell JSONL rows to --json (BENCH_rw.json), and
// with --update splices the table between the `<!-- psc-report:begin -->`
// and `<!-- psc-report:end -->` markers of an existing Markdown document
// (how EXPERIMENTS.md's committed table is regenerated). --profile (or
// `profile = 1` in CONFIG) attaches the sampling microprofiler to every
// cell and appends the aggregated executor self-time table to the report.
//
// Exit status: 0 on success; 1 when any cell observed negative bound slack
// (a run got *outside* a theoretical bound) or failed linearizability —
// the CI gate.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/experiment.hpp"
#include "util/check.hpp"

using namespace psc;

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --sweep=CONFIG [--markdown=PATH] [--json=PATH] "
               "[--update=PATH] [--profile] [--quiet]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string sweep_path, markdown_path, json_path, update_path;
  bool quiet = false;
  bool profile = false;
  for (int k = 1; k < argc; ++k) {
    const std::string s = argv[k];
    const auto val = [&s](const char* key) -> std::string {
      const std::string prefix = std::string("--") + key + "=";
      return s.rfind(prefix, 0) == 0 ? s.substr(prefix.size()) : "";
    };
    if (!val("sweep").empty()) {
      sweep_path = val("sweep");
    } else if (!val("markdown").empty()) {
      markdown_path = val("markdown");
    } else if (!val("json").empty()) {
      json_path = val("json");
    } else if (!val("update").empty()) {
      update_path = val("update");
    } else if (s == "--quiet") {
      quiet = true;
    } else if (s == "--profile") {
      profile = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (sweep_path.empty()) return usage(argv[0]);

  try {
    SweepConfig cfg = load_sweep_config(sweep_path);
    if (profile) cfg.profile = true;
    const SweepResult result = run_sweep(cfg);

    std::ostringstream table;
    write_markdown(result, table);

    if (!markdown_path.empty()) {
      std::ofstream os(markdown_path);
      PSC_CHECK(os.good(), "cannot open " << markdown_path);
      os << table.str();
    }
    if (!json_path.empty()) {
      std::ofstream os(json_path);
      PSC_CHECK(os.good(), "cannot open " << json_path);
      write_json(result, os);
    }
    if (!update_path.empty()) {
      std::ifstream is(update_path);
      PSC_CHECK(is.good(), "cannot open " << update_path);
      std::ostringstream buf;
      buf << is.rdbuf();
      is.close();
      const std::string updated = update_markdown_region(buf.str(), table.str());
      std::ofstream os(update_path);
      PSC_CHECK(os.good(), "cannot rewrite " << update_path);
      os << updated;
    }
    if (!quiet) std::cout << table.str();

    if (result.has_negative_slack()) {
      std::cerr << "psc-report: FAIL — negative bound slack observed ("
                << result.min_slack() << " ns): some run escaped a "
                << "theoretical bound\n";
      return 1;
    }
    if (!result.all_linearizable()) {
      std::cerr << "psc-report: FAIL — a sweep cell is not linearizable\n";
      return 1;
    }
    if (!quiet) {
      std::cerr << "psc-report: OK — " << result.cells.size()
                << " cells, min slack "
                << (result.min_slack() < kTimeMax
                        ? std::to_string(result.min_slack()) + " ns"
                        : std::string("n/a"))
                << "\n";
    }
  } catch (const CheckError& e) {
    std::cerr << "psc-report: " << e.what() << "\n";
    return 2;
  }
  return 0;
}
