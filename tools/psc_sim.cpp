// psc-sim — command-line scenario runner.
//
// Runs one of the library's register/queue systems with configurable
// parameters, verifies the correctness property, prints latency stats, and
// optionally dumps the full event trace in the trace_io text format.
//
//   psc-sim <scenario> [--key=value ...]
//
// Scenarios:
//   rw-timed     algorithm L/S in the timed model
//   rw-clock     transformed S in the clock model (Theorem 6.5)
//   rw-sliced    the [10] baseline reconstruction
//   rw-mmt       the full Theorem 5.2 pipeline
//   queue        the replicated FIFO queue (total-order broadcast)
//
// Keys (defaults in brackets): nodes[3] ops[20] d1_us[20] d2_us[300]
// eps_us[50] c_us[40] ell_us[10] write_frac[0.5] drift[zigzag] seed[1]
// super[1] trace[""]   (drift: perfect|offset+|offset-|zigzag|random|
// opposing|disciplined)
//
// Observability (docs/OBSERVABILITY.md):
//   --metrics-out=PATH   dump the run's metrics registry as JSONL
//   --chrome-trace=PATH  write a Chrome trace_event JSON of the run —
//                        open in chrome://tracing or ui.perfetto.dev
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <string>

#include "clock/discipline.hpp"
#include "core/trace_io.hpp"
#include "mmt/mmt_system.hpp"
#include "obs/instrument.hpp"
#include "rw/harness.hpp"
#include "rw/queue.hpp"
#include "util/stats.hpp"

using namespace psc;

namespace {

std::map<std::string, std::string> parse_args(int argc, char** argv) {
  std::map<std::string, std::string> args;
  for (int k = 2; k < argc; ++k) {
    std::string s = argv[k];
    if (s.rfind("--", 0) != 0) {
      std::cerr << "bad argument: " << s << "\n";
      std::exit(2);
    }
    const auto eq = s.find('=');
    if (eq == std::string::npos) {
      args[s.substr(2)] = "1";
    } else {
      args[s.substr(2, eq - 2)] = s.substr(eq + 1);
    }
  }
  return args;
}

std::int64_t geti(const std::map<std::string, std::string>& a,
                  const std::string& key, std::int64_t def) {
  auto it = a.find(key);
  return it == a.end() ? def : std::stoll(it->second);
}

double getd(const std::map<std::string, std::string>& a,
            const std::string& key, double def) {
  auto it = a.find(key);
  return it == a.end() ? def : std::stod(it->second);
}

std::string gets(const std::map<std::string, std::string>& a,
                 const std::string& key, const std::string& def) {
  auto it = a.find(key);
  return it == a.end() ? def : it->second;
}

std::unique_ptr<DriftModel> make_drift(const std::string& name) {
  if (name == "perfect") return std::make_unique<PerfectDrift>();
  if (name == "offset+") return std::make_unique<OffsetDrift>(+1.0);
  if (name == "offset-") return std::make_unique<OffsetDrift>(-1.0);
  if (name == "zigzag") return std::make_unique<ZigzagDrift>(0.3);
  if (name == "random") {
    return std::make_unique<RandomDrift>(0.1, milliseconds(1));
  }
  if (name == "opposing") return std::make_unique<OpposingOffsetDrift>();
  if (name == "disciplined") {
    return std::make_unique<DisciplinedDrift>(DisciplineConfig{});
  }
  std::cerr << "unknown drift model: " << name << "\n";
  std::exit(2);
}

void print_latency(const char* label, const std::vector<Duration>& ls) {
  if (ls.empty()) {
    std::cout << "  " << label << ": none\n";
    return;
  }
  Samples s;
  for (const Duration l : ls) s.add(static_cast<double>(l));
  std::cout << "  " << label << ": n=" << s.count() << "  min="
            << format_time(static_cast<Time>(s.min())) << "  p50="
            << format_time(static_cast<Time>(s.percentile(50))) << "  p99="
            << format_time(static_cast<Time>(s.percentile(99))) << "  max="
            << format_time(static_cast<Time>(s.max())) << "\n";
}

// Observability plumbing shared by all scenarios: owns the output streams
// and the registry, hands the harness an ObsOptions, and writes the JSONL
// dump once the run is over.
class ObsSetup {
 public:
  explicit ObsSetup(const std::map<std::string, std::string>& args) {
    metrics_path_ = gets(args, "metrics-out", "");
    chrome_path_ = gets(args, "chrome-trace", "");
    if (!metrics_path_.empty()) opts_.registry = &registry_;
    if (!chrome_path_.empty()) {
      chrome_.open(chrome_path_);
      if (!chrome_) {
        std::cerr << "cannot open " << chrome_path_ << "\n";
        std::exit(2);
      }
      opts_.chrome_out = &chrome_;
    }
  }

  const ObsOptions* options() const {
    return opts_.enabled() ? &opts_ : nullptr;
  }

  void finish(const TimedTrace& events, Time end_time) {
    if (opts_.registry != nullptr) {
      registry_.gauge("run.end_time_ns").set(static_cast<double>(end_time));
      registry_.counter("run.events").add(events.size());
      std::ofstream os(metrics_path_);
      if (!os) {
        std::cerr << "cannot open " << metrics_path_ << "\n";
        std::exit(2);
      }
      registry_.write_jsonl(os);
      std::cout << "metrics (" << registry_.size() << " series) written to "
                << metrics_path_ << "\n";
    }
    if (!chrome_path_.empty()) {
      std::cout << "chrome trace written to " << chrome_path_
                << " (open in chrome://tracing or ui.perfetto.dev)\n";
    }
  }

 private:
  MetricsRegistry registry_;
  std::ofstream chrome_;
  std::string metrics_path_, chrome_path_;
  ObsOptions opts_;
};

void maybe_dump(const std::string& path, const TimedTrace& events) {
  if (path.empty()) return;
  std::ofstream os(path);
  if (!os) {
    std::cerr << "cannot open " << path << "\n";
    std::exit(2);
  }
  write_trace(os, events);
  std::cout << "trace (" << events.size() << " events) written to " << path
            << "\n";
}

int run_register(const std::string& scenario,
                 const std::map<std::string, std::string>& args) {
  RwRunConfig cfg;
  cfg.num_nodes = static_cast<int>(geti(args, "nodes", 3));
  cfg.ops_per_node = static_cast<int>(geti(args, "ops", 20));
  cfg.d1 = microseconds(geti(args, "d1_us", 20));
  cfg.d2 = microseconds(geti(args, "d2_us", 300));
  cfg.eps = microseconds(geti(args, "eps_us", 50));
  cfg.c = microseconds(geti(args, "c_us", 40));
  cfg.write_fraction = getd(args, "write_frac", 0.5);
  cfg.super = geti(args, "super", 1) != 0;
  cfg.seed = static_cast<std::uint64_t>(geti(args, "seed", 1));
  cfg.think_max = microseconds(300);
  cfg.horizon = seconds(60);
  const auto drift = make_drift(gets(args, "drift", "zigzag"));
  ObsSetup obs(args);
  cfg.obs = obs.options();

  RwRunResult run;
  if (scenario == "rw-timed") {
    run = run_rw_timed(cfg);
  } else if (scenario == "rw-clock") {
    run = run_rw_clock(cfg, *drift);
  } else if (scenario == "rw-sliced") {
    run = run_rw_sliced(cfg, *drift);
  } else {  // rw-mmt
    const Duration ell = microseconds(geti(args, "ell_us", 10));
    run = run_rw_mmt(cfg, *drift, ell, cfg.num_nodes + 2);
  }

  std::cout << scenario << ": " << run.ops.size() << " operations, "
            << run.events.size() << " events\n";
  print_latency("reads ", latencies(run.ops, Operation::Kind::kRead));
  print_latency("writes", latencies(run.ops, Operation::Kind::kWrite));
  const auto lin = check_linearizable(run.ops, cfg.v0);
  std::cout << "linearizability: " << (lin.ok ? "VERIFIED" : "VIOLATED")
            << " (" << lin.states << " states)\n";
  maybe_dump(gets(args, "trace", ""), run.events);
  obs.finish(run.events, run.end_time);
  return lin.ok ? 0 : 1;
}

int run_queue(const std::map<std::string, std::string>& args) {
  QueueRunConfig cfg;
  cfg.num_nodes = static_cast<int>(geti(args, "nodes", 3));
  cfg.ops_per_node = static_cast<int>(geti(args, "ops", 15));
  cfg.d1 = microseconds(geti(args, "d1_us", 20));
  cfg.d2 = microseconds(geti(args, "d2_us", 300));
  cfg.eps = microseconds(geti(args, "eps_us", 50));
  cfg.enq_fraction = getd(args, "write_frac", 0.5);
  cfg.seed = static_cast<std::uint64_t>(geti(args, "seed", 1));
  cfg.think_max = microseconds(300);
  cfg.horizon = seconds(60);
  const auto drift = make_drift(gets(args, "drift", "zigzag"));
  ObsSetup obs(args);
  cfg.obs = obs.options();
  const auto run = run_queue_clock(cfg, *drift);
  std::cout << "queue: " << run.ops.size() << " operations, "
            << run.events.size() << " events\n";
  const auto lin = check_linearizable_queue(run.ops);
  std::cout << "queue linearizability: "
            << (lin.ok ? "VERIFIED" : "VIOLATED") << " (" << lin.states
            << " states)\n";
  maybe_dump(gets(args, "trace", ""), run.events);
  obs.finish(run.events, ltime(run.events));
  return lin.ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: psc-sim <rw-timed|rw-clock|rw-sliced|rw-mmt|queue> "
                 "[--key=value ...]\n";
    return 2;
  }
  const std::string scenario = argv[1];
  const auto args = parse_args(argc, argv);
  if (scenario == "queue") return run_queue(args);
  if (scenario == "rw-timed" || scenario == "rw-clock" ||
      scenario == "rw-sliced" || scenario == "rw-mmt") {
    return run_register(scenario, args);
  }
  std::cerr << "unknown scenario: " << scenario << "\n";
  return 2;
}
