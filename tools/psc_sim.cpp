// psc-sim — command-line scenario runner.
//
// Runs one of the library's register/queue systems with configurable
// parameters, verifies the correctness property, prints latency stats, and
// optionally dumps the full event trace in the trace_io text format.
//
//   psc-sim <scenario> [--key=value ...]
//
// Scenarios:
//   rw-timed     algorithm L/S in the timed model
//   rw-clock     transformed S in the clock model (Theorem 6.5)
//   rw-sliced    the [10] baseline reconstruction
//   rw-mmt       the full Theorem 5.2 pipeline
//   queue        the replicated FIFO queue (total-order broadcast)
//   flood        flooding broadcast on a ring (time-based termination)
//
// Keys (defaults in brackets): nodes[3] ops[20] d1_us[20] d2_us[300]
// eps_us[50] c_us[40] ell_us[10] write_frac[0.5] drift[zigzag] seed[1]
// super[1] trace[""]   (drift: perfect|offset+|offset-|zigzag|random|
// opposing|disciplined)
//
// Observability (docs/OBSERVABILITY.md):
//   --metrics-out=PATH   dump the run's metrics registry as JSONL
//   --chrome-trace=PATH  write a Chrome trace_event JSON of the run —
//                        open in chrome://tracing or ui.perfetto.dev
//   --causal-trace=PATH  build the happens-before DAG and dump it as JSONL;
//                        with --chrome-trace, message chains additionally
//                        become flow-event arrows in the trace
//   --critical-path=SINK longest real-time path into the last span named
//                        SINK (bare flag: the run's final span), with
//                        per-edge-kind latency attribution
//   --exec-stats         print the executor's scheduler self-metrics
//
// Conformance (docs/ANALYSIS.md):
//   --lint               lint the composition before the run (PSC0xx; any
//                        error aborts) and replay the run online through the
//                        invariant checker (PSC1xx) with the scenario's own
//                        eps/d1/d2/ell; errors fail the exit status
//
// Flight recorder (docs/OBSERVABILITY.md):
//   --flight[=PATH]      keep an always-on binary ring of recent events and
//                        write a .fly snapshot (default psc-flight.fly) at
//                        run end — or immediately, at the first PSC1xx
//                        error, when --lint is also set (dump-on-violation).
//                        Decode snapshots with psc-flight.
//   --flight-ring=N      per-shard ring capacity in records [8192]
//
// Microprofiler (docs/OBSERVABILITY.md):
//   --profile[=PATH]     sample the executor hot loop (per-phase cycle
//                        attribution) and print the self-time table at run
//                        end; a PATH value also writes folded stacks there
//                        (flamegraph.pl-compatible). With --chrome-trace the
//                        per-phase totals stream as counter tracks; with
//                        --metrics-out the exec.prof.* gauges join the dump.
//   --prof-sample=N      profile every N-th scheduler iteration [64]
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <string>

#include "algos/flood.hpp"
#include "analysis/trace_check.hpp"
#include "clock/discipline.hpp"
#include "core/trace_io.hpp"
#include "mmt/mmt_system.hpp"
#include "obs/flight.hpp"
#include "obs/instrument.hpp"
#include "obs/prof.hpp"
#include "runtime/system.hpp"
#include "rw/harness.hpp"
#include "rw/queue.hpp"
#include "util/stats.hpp"

using namespace psc;

namespace {

std::map<std::string, std::string> parse_args(int argc, char** argv) {
  std::map<std::string, std::string> args;
  for (int k = 2; k < argc; ++k) {
    std::string s = argv[k];
    if (s.rfind("--", 0) != 0) {
      std::cerr << "bad argument: " << s << "\n";
      std::exit(2);
    }
    const auto eq = s.find('=');
    if (eq == std::string::npos) {
      args.insert_or_assign(s.substr(2), std::string("1"));
    } else {
      args.insert_or_assign(s.substr(2, eq - 2), s.substr(eq + 1));
    }
  }
  return args;
}

std::int64_t geti(const std::map<std::string, std::string>& a,
                  const std::string& key, std::int64_t def) {
  auto it = a.find(key);
  return it == a.end() ? def : std::stoll(it->second);
}

double getd(const std::map<std::string, std::string>& a,
            const std::string& key, double def) {
  auto it = a.find(key);
  return it == a.end() ? def : std::stod(it->second);
}

std::string gets(const std::map<std::string, std::string>& a,
                 const std::string& key, const std::string& def) {
  auto it = a.find(key);
  return it == a.end() ? def : it->second;
}

std::unique_ptr<DriftModel> make_drift(const std::string& name) {
  if (name == "perfect") return std::make_unique<PerfectDrift>();
  if (name == "offset+") return std::make_unique<OffsetDrift>(+1.0);
  if (name == "offset-") return std::make_unique<OffsetDrift>(-1.0);
  if (name == "zigzag") return std::make_unique<ZigzagDrift>(0.3);
  if (name == "random") {
    return std::make_unique<RandomDrift>(0.1, milliseconds(1));
  }
  if (name == "opposing") return std::make_unique<OpposingOffsetDrift>();
  if (name == "disciplined") {
    return std::make_unique<DisciplinedDrift>(DisciplineConfig{});
  }
  std::cerr << "unknown drift model: " << name << "\n";
  std::exit(2);
}

void print_latency(const char* label, const std::vector<Duration>& ls) {
  if (ls.empty()) {
    std::cout << "  " << label << ": none\n";
    return;
  }
  Samples s;
  for (const Duration l : ls) s.add(static_cast<double>(l));
  std::cout << "  " << label << ": n=" << s.count() << "  min="
            << format_time(static_cast<Time>(s.min())) << "  p50="
            << format_time(static_cast<Time>(s.percentile(50))) << "  p99="
            << format_time(static_cast<Time>(s.percentile(99))) << "  max="
            << format_time(static_cast<Time>(s.max())) << "\n";
}

// Observability plumbing shared by all scenarios: owns the output streams
// and the registry, hands the harness an ObsOptions, and writes the JSONL
// dump once the run is over.
class ObsSetup {
 public:
  explicit ObsSetup(const std::map<std::string, std::string>& args) {
    metrics_path_ = gets(args, "metrics-out", "");
    chrome_path_ = gets(args, "chrome-trace", "");
    causal_path_ = gets(args, "causal-trace", "");
    critical_sink_ = gets(args, "critical-path", "");
    exec_stats_ = args.count("exec-stats") > 0;
    if (!metrics_path_.empty()) opts_.registry = &registry_;
    if (!chrome_path_.empty()) {
      chrome_.open(chrome_path_);
      if (!chrome_) {
        std::cerr << "cannot open " << chrome_path_ << "\n";
        std::exit(2);
      }
      opts_.chrome_out = &chrome_;
    }
    // --critical-path implies building the DAG even without a dump path.
    if (!causal_path_.empty() || !critical_sink_.empty()) {
      opts_.causal = &causal_;
    }
    if (exec_stats_) opts_.exec_stats = true;
    if (args.count("flight") > 0) {
      flight_path_ = gets(args, "flight", "1");
      // Bare --flight parses as "1": fall back to the default snapshot name.
      if (flight_path_ == "1") flight_path_ = "psc-flight.fly";
      FlightOptions fo;
      if (args.count("flight-ring") > 0) {
        fo.ring_capacity = static_cast<std::size_t>(
            geti(args, "flight-ring",
                 static_cast<long long>(fo.ring_capacity)));
      }
      flight_.emplace(fo);
      opts_.flight = &*flight_;
    }
    if (args.count("profile") > 0) {
      profile_path_ = gets(args, "profile", "1");
      // Bare --profile parses as "1": table only, no folded-stack file.
      if (profile_path_ == "1") profile_path_.clear();
      ProfOptions po;
      const auto n = geti(args, "prof-sample",
                          static_cast<std::int64_t>(po.sample_every));
      if (n > 0) po.sample_every = static_cast<std::uint32_t>(n);
      prof_.emplace(po);
      opts_.profile = &*prof_;
    }
  }

  const ObsOptions* options() const {
    return opts_.enabled() ? &opts_ : nullptr;
  }

  // Attaches an online invariant checker (analysis/trace_check.hpp) to the
  // run. Call before handing options() to the harness. With --flight also
  // set, hooks dump-on-violation: the first PSC1xx error snapshots the ring
  // (which still holds the offending event) before the run continues.
  void enable_lint(const TraceCheckOptions& opts) {
    TraceCheckOptions lo = opts;
    if (flight_.has_value()) {
      lo.on_violation = [this](const Diagnostic& d) { dump_violation(d); };
    }
    lint_.emplace(lo);
    opts_.lint = &*lint_;
  }
  bool lint_enabled() const { return lint_.has_value(); }
  // False when the checker reported error-severity diagnostics, or the run
  // was cut short by the event cap (its trace is unfit to certify).
  bool lint_ok() const {
    if (!lint_.has_value()) return true;
    return !lint_->report().has_errors() && !capped_;
  }

  void finish(const TimedTrace& events, Time end_time,
              const ExecutorReport* report = nullptr) {
    if (report != nullptr && report->hit_event_cap) {
      capped_ = true;
      std::cerr << "warning: run hit the max_events cap before its horizon"
                   " — results cover a truncated prefix\n";
      // A truncated run is exactly what the recorder exists to explain:
      // snapshot the tail even though no invariant fired.
      if (flight_.has_value() && !flight_dumped_) dump_flight("event cap");
    }
    if (flight_.has_value()) {
      if (opts_.registry != nullptr) flight_->export_metrics(registry_);
      if (!flight_dumped_) dump_flight("run end");
    }
    if (prof_.has_value()) {
      const ProfReport prof_report = prof_->report();
      if (opts_.registry != nullptr) prof_->export_metrics(registry_);
      std::cout << "executor self-time (microprofiler):\n";
      write_prof_table(std::cout, prof_report);
      if (!profile_path_.empty()) {
        std::ofstream os(profile_path_);
        if (!os) {
          std::cerr << "cannot open " << profile_path_ << "\n";
          std::exit(2);
        }
        write_folded(os, prof_report);
        std::cout << "folded stacks written to " << profile_path_
                  << " (flamegraph.pl-compatible)\n";
      }
    }
    if (opts_.registry != nullptr) {
      registry_.gauge("run.end_time_ns").set(static_cast<double>(end_time));
      registry_.counter("run.events").add(events.size());
      std::ofstream os(metrics_path_);
      if (!os) {
        std::cerr << "cannot open " << metrics_path_ << "\n";
        std::exit(2);
      }
      registry_.write_jsonl(os);
      std::cout << "metrics (" << registry_.size() << " series) written to "
                << metrics_path_ << "\n";
    }
    if (!chrome_path_.empty()) {
      std::cout << "chrome trace written to " << chrome_path_
                << " (open in chrome://tracing or ui.perfetto.dev)\n";
    }
    if (opts_.causal != nullptr) finish_causal(end_time);
    if (exec_stats_ && report != nullptr) print_exec_stats(report->stats);
    if (lint_.has_value()) {
      const DiagnosticReport& rep = lint_->report();
      if (rep.empty()) {
        std::cout << "lint: clean (" << events.size() << " events checked)\n";
      } else {
        std::cout << "lint:\n" << rep.to_text();
      }
    }
  }

 private:
  void dump_violation(const Diagnostic& d) {
    if (flight_dumped_) return;  // keep the window around the *first* error
    std::cerr << "flight: dumping on violation [" << to_string(d.code) << "] "
              << d.message << "\n";
    dump_flight("violation");
  }

  void dump_flight(const char* why) {
    flight_dumped_ = true;
    if (!flight_->dump(flight_path_)) {
      std::cerr << "cannot write " << flight_path_ << "\n";
      std::exit(2);
    }
    std::cout << "flight snapshot (" << flight_->retained() << " of "
              << flight_->total_recorded() << " events, " << why
              << ") written to " << flight_path_ << "\n";
  }

  void finish_causal(Time end_time) {
    const CausalDag& dag = causal_.dag();
    if (!causal_path_.empty()) {
      std::ofstream os(causal_path_);
      if (!os) {
        std::cerr << "cannot open " << causal_path_ << "\n";
        std::exit(2);
      }
      dag.write_jsonl(os);
      std::cout << "causal DAG (" << dag.size() << " spans, "
                << dag.process_count() << " processes) written to "
                << causal_path_ << "\n";
    }
    if (critical_sink_.empty() || dag.size() == 0) return;
    // Bare --critical-path means "the run's final span"; a value names the
    // sink action (last span with that name).
    const SpanId sink = critical_sink_ == "1"
                            ? static_cast<SpanId>(dag.size() - 1)
                            : dag.find_last(critical_sink_);
    if (sink == kNoSpan) {
      std::cerr << "critical-path: no span named " << critical_sink_ << "\n";
      std::exit(2);
    }
    const CriticalPath cp = dag.critical_path(sink);
    std::cout << "critical path to " << dag.name(sink) << " (span " << sink
              << "): " << cp.steps.size() << " steps, total "
              << format_time(cp.total)
              << (cp.total == dag.span(sink).time ? "" : " [INTERNAL ERROR]")
              << (dag.span(sink).time == end_time ? " == run end time"
                                                  : "")
              << "\n";
    for (std::size_t k = 0; k < kNumEdgeKinds; ++k) {
      if (cp.by_kind[k] == 0) continue;
      std::cout << "  " << to_string(static_cast<EdgeKind>(k)) << ": "
                << format_time(cp.by_kind[k]) << "\n";
    }
  }

  static void print_exec_stats(const ExecutorStats& s) {
    std::cout << "scheduler: events=" << s.events
              << " time_advances=" << s.time_advances << "\n"
              << "  wake: pushes=" << s.wake_pushes << " pops=" << s.wake_pops
              << " stale=" << s.wake_stale_pops
              << " compactions=" << s.wake_compactions << "\n"
              << "  dirty: flushes=" << s.dirty_flushes
              << " repolls=" << s.dirty_repolls << " peak=" << s.dirty_peak
              << " cache_hit_rate=" << s.cache_hit_rate() << "\n"
              << "  routing: fast=" << s.route_fast
              << " classify=" << s.route_classify
              << " fast_path_rate=" << s.fast_path_rate()
              << " fanout_inputs=" << s.fanout_inputs
              << " fanout_classify=" << s.fanout_classify_calls
              << " kind_hits=" << s.kind_hits
              << " kind_resolves=" << s.kind_resolves
              << " kind_memo_hits=" << s.kind_memo_hits << "\n"
              << "  wheel: inserts=" << s.wheel.inserts
              << " due=" << s.wheel.due << " stale=" << s.wheel.stale_drops
              << " cascades=" << s.wheel.cascades
              << " compactions=" << s.wheel.compactions << "\n";
  }

  MetricsRegistry registry_;
  CausalTraceProbe causal_;
  std::optional<InvariantProbe> lint_;
  std::optional<FlightRecorder> flight_;
  std::optional<Profiler> prof_;
  std::ofstream chrome_;
  std::string metrics_path_, chrome_path_, causal_path_, critical_sink_;
  std::string flight_path_, profile_path_;
  bool exec_stats_ = false;
  bool flight_dumped_ = false;
  bool capped_ = false;
  ObsOptions opts_;
};

void maybe_dump(const std::string& path, const TimedTrace& events) {
  if (path.empty()) return;
  std::ofstream os(path);
  if (!os) {
    std::cerr << "cannot open " << path << "\n";
    std::exit(2);
  }
  const bool jsonl =
      path.size() >= 6 && path.compare(path.size() - 6, 6, ".jsonl") == 0;
  if (jsonl) {
    write_trace_jsonl(os, events);
  } else {
    write_trace(os, events);
  }
  std::cout << "trace (" << events.size() << " events) written to " << path
            << "\n";
}

int run_register(const std::string& scenario,
                 const std::map<std::string, std::string>& args) {
  RwRunConfig cfg;
  cfg.num_nodes = static_cast<int>(geti(args, "nodes", 3));
  cfg.ops_per_node = static_cast<int>(geti(args, "ops", 20));
  cfg.d1 = microseconds(geti(args, "d1_us", 20));
  cfg.d2 = microseconds(geti(args, "d2_us", 300));
  cfg.eps = microseconds(geti(args, "eps_us", 50));
  cfg.c = microseconds(geti(args, "c_us", 40));
  cfg.write_fraction = getd(args, "write_frac", 0.5);
  cfg.super = geti(args, "super", 1) != 0;
  cfg.seed = static_cast<std::uint64_t>(geti(args, "seed", 1));
  cfg.think_max = microseconds(300);
  cfg.horizon = seconds(60);
  const auto drift = make_drift(gets(args, "drift", "zigzag"));
  const Duration ell = microseconds(geti(args, "ell_us", 10));
  ObsSetup obs(args);
  if (args.count("lint") > 0) {
    cfg.validate = true;
    TraceCheckOptions lo;
    lo.d1 = cfg.d1;
    lo.d2 = cfg.d2;
    lo.num_nodes = cfg.num_nodes;
    if (scenario != "rw-timed") lo.eps = cfg.eps;
    if (scenario == "rw-mmt") lo.ell = ell;
    obs.enable_lint(lo);
  }
  cfg.obs = obs.options();

  RwRunResult run;
  if (scenario == "rw-timed") {
    run = run_rw_timed(cfg);
  } else if (scenario == "rw-clock") {
    run = run_rw_clock(cfg, *drift);
  } else if (scenario == "rw-sliced") {
    run = run_rw_sliced(cfg, *drift);
  } else {  // rw-mmt
    run = run_rw_mmt(cfg, *drift, ell, cfg.num_nodes + 2);
  }

  std::cout << scenario << ": " << run.ops.size() << " operations, "
            << run.events.size() << " events\n";
  print_latency("reads ", latencies(run.ops, Operation::Kind::kRead));
  print_latency("writes", latencies(run.ops, Operation::Kind::kWrite));
  const auto lin = check_linearizable(run.ops, cfg.v0);
  std::cout << "linearizability: " << (lin.ok ? "VERIFIED" : "VIOLATED")
            << " (" << lin.states << " states)\n";
  maybe_dump(gets(args, "trace", ""), run.events);
  obs.finish(run.events, run.end_time, &run.report);
  if (!obs.lint_ok()) return 1;
  return lin.ok ? 0 : 1;
}

int run_queue(const std::map<std::string, std::string>& args) {
  QueueRunConfig cfg;
  cfg.num_nodes = static_cast<int>(geti(args, "nodes", 3));
  cfg.ops_per_node = static_cast<int>(geti(args, "ops", 15));
  cfg.d1 = microseconds(geti(args, "d1_us", 20));
  cfg.d2 = microseconds(geti(args, "d2_us", 300));
  cfg.eps = microseconds(geti(args, "eps_us", 50));
  cfg.enq_fraction = getd(args, "write_frac", 0.5);
  cfg.seed = static_cast<std::uint64_t>(geti(args, "seed", 1));
  cfg.think_max = microseconds(300);
  cfg.horizon = seconds(60);
  const auto drift = make_drift(gets(args, "drift", "zigzag"));
  ObsSetup obs(args);
  if (args.count("lint") > 0) {
    cfg.validate = true;
    TraceCheckOptions lo;
    lo.d1 = cfg.d1;
    lo.d2 = cfg.d2;
    lo.eps = cfg.eps;
    lo.num_nodes = cfg.num_nodes;
    obs.enable_lint(lo);
  }
  cfg.obs = obs.options();
  const auto run = run_queue_clock(cfg, *drift);
  std::cout << "queue: " << run.ops.size() << " operations, "
            << run.events.size() << " events\n";
  const auto lin = check_linearizable_queue(run.ops);
  std::cout << "queue linearizability: "
            << (lin.ok ? "VERIFIED" : "VIOLATED") << " (" << lin.states
            << " states)\n";
  maybe_dump(gets(args, "trace", ""), run.events);
  obs.finish(run.events, ltime(run.events), &run.report);
  if (!obs.lint_ok()) return 1;
  return lin.ok ? 0 : 1;
}

// Flooding broadcast on a ring — the paper's cleanest causal-chain example:
// the critical path into COMPLETE is the hop chain source → ... → last
// node, so --causal-trace / --critical-path demonstrations read well.
int run_flood(const std::map<std::string, std::string>& args) {
  const int n = static_cast<int>(geti(args, "nodes", 3));
  const Duration d1 = microseconds(geti(args, "d1_us", 20));
  const Duration d2 = microseconds(geti(args, "d2_us", 300));
  const Duration margin = microseconds(geti(args, "margin_us", 10));
  const auto seed = static_cast<std::uint64_t>(geti(args, "seed", 1));
  ObsSetup obs(args);
  const bool lint = args.count("lint") > 0;
  if (lint) {
    TraceCheckOptions lo;
    lo.d1 = d1;
    lo.d2 = d2;
    lo.num_nodes = n;
    obs.enable_lint(lo);
  }

  Executor exec({.horizon = seconds(60), .seed = seed, .validate = lint});
  const Graph g = Graph::ring(n);
  ChannelConfig cc;
  cc.d1 = d1;
  cc.d2 = d2;
  cc.seed = seed ^ 0xf100d;
  add_timed_system(exec, g, cc,
                   make_flood_nodes(g, /*source=*/0, /*payload=*/42,
                                    /*hops_bound=*/g.n, d2, margin));
  RunObserver observer(obs.options());
  observer.add_channel_latency(d1, d2);
  observer.attach(exec);
  const ExecutorReport report = exec.run();

  const bool safe = flood_safe(exec.events(), n);
  std::cout << "flood: " << n << " nodes, " << report.steps
            << " events, end time " << format_time(report.end_time) << "\n";
  std::cout << "flood safety: " << (safe ? "VERIFIED" : "VIOLATED") << "\n";
  maybe_dump(gets(args, "trace", ""), exec.events());
  obs.finish(exec.events(), report.end_time, &report);
  if (!obs.lint_ok()) return 1;
  return safe ? 0 : 1;
}

// Every flag psc-sim understands, one line each — kept in sync with the
// header comment and docs/OBSERVABILITY.md (a test greps this output for
// the observability flags, so new obs features must be listed here).
void print_usage(std::ostream& os) {
  os << "usage: psc-sim <scenario> [--key=value ...]\n"
        "\n"
        "scenarios:\n"
        "  rw-timed             algorithm L/S in the timed model\n"
        "  rw-clock             transformed S in the clock model (Thm 6.5)\n"
        "  rw-sliced            the [10] baseline reconstruction\n"
        "  rw-mmt               the full Theorem 5.2 pipeline\n"
        "  queue                replicated FIFO queue (total-order bcast)\n"
        "  flood                flooding broadcast on a ring\n"
        "\n"
        "scenario keys (defaults in brackets):\n"
        "  --nodes=N            number of nodes [3]\n"
        "  --ops=N              operations per node [20 register, 15 queue]\n"
        "  --d1_us=N --d2_us=N  channel delay bounds in microseconds "
        "[20/300]\n"
        "  --eps_us=N           clock synchronization bound [50]\n"
        "  --c_us=N             register lease parameter C [40]\n"
        "  --ell_us=N           MMT step-time bound [10]\n"
        "  --margin_us=N        flood termination margin [10]\n"
        "  --write_frac=F       write (enqueue) fraction [0.5]\n"
        "  --drift=NAME         perfect|offset+|offset-|zigzag|random|\n"
        "                       opposing|disciplined [zigzag]\n"
        "  --seed=N             RNG seed [1]\n"
        "  --super=0|1          superposition register layout [1]\n"
        "  --trace=PATH         dump the event trace (.jsonl -> JSONL)\n"
        "\n"
        "observability (docs/OBSERVABILITY.md):\n"
        "  --metrics-out=PATH   dump the run's metrics registry as JSONL\n"
        "  --chrome-trace=PATH  Chrome trace_event JSON of the run (open in\n"
        "                       chrome://tracing or ui.perfetto.dev)\n"
        "  --causal-trace=PATH  happens-before DAG as JSONL; with\n"
        "                       --chrome-trace adds message flow arrows\n"
        "  --critical-path[=S]  longest real-time path into the last span\n"
        "                       named S (bare: the run's final span)\n"
        "  --exec-stats         print the scheduler's self-metrics\n"
        "  --lint               static PSC0xx lint + online PSC1xx invariant\n"
        "                       replay; errors fail the exit status\n"
        "  --flight[=PATH]      always-on binary ring of recent events; .fly\n"
        "                       snapshot at run end or on first violation\n"
        "                       when --lint is set [psc-flight.fly]\n"
        "  --flight-ring=N      per-shard ring capacity in records [8192]\n"
        "  --profile[=PATH]     per-phase executor self-time table at run\n"
        "                       end; PATH also gets flamegraph.pl-compatible\n"
        "                       folded stacks; with --chrome-trace adds\n"
        "                       per-phase counter tracks\n"
        "  --prof-sample=N      profile every N-th scheduler iteration "
        "[64]\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage(std::cerr);
    return 2;
  }
  const std::string scenario = argv[1];
  if (scenario == "--help" || scenario == "-h" || scenario == "help") {
    print_usage(std::cout);
    return 0;
  }
  const auto args = parse_args(argc, argv);
  if (scenario == "queue") return run_queue(args);
  if (scenario == "flood") return run_flood(args);
  if (scenario == "rw-timed" || scenario == "rw-clock" ||
      scenario == "rw-sliced" || scenario == "rw-mmt") {
    return run_register(scenario, args);
  }
  std::cerr << "unknown scenario: " << scenario << "\n";
  return 2;
}
